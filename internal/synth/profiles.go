package synth

import (
	"fmt"
	"math/rand"
)

// The per-pattern temporal profiles. Each generator draws one schedule
// attempt; generateVerified retries until the schedule classifies as
// intended. Volume parameters are calibrated to the paper's §6.1
// medians of post-birth activity (Radical Sign ≈ 13, Siesta ≈ 17,
// Quantum Steps ≈ 22, Smoking Funnel ≈ 189, Regularly Curated ≈ 250,
// the rest ≈ 0-3).

// genFlatliner: birth and top band at the originating month (Def 4.1);
// about half carry a tiny late trickle (birth volume high, not full).
func genFlatliner(rng *rand.Rand, _ BirthBucket) (*Schedule, error) {
	s := newSchedule(randPUP(rng, 14), 1)
	s.Monthly[0] = 5 + lognormInt(rng, 20, 0.6)
	maybeResidual(rng, s, 0, 0.5)
	return s, nil
}

// maybeResidual adds, with the given probability, a small trickle of
// late change (under 10% of the total, so the top-band month is
// unmoved). It models the paper's observation that even "frozen"
// patterns often carry a high (not full) birth volume.
func maybeResidual(rng *rand.Rand, s *Schedule, topMonth int, prob float64) {
	if rng.Float64() >= prob || topMonth >= s.PUP-2 {
		return
	}
	total := s.TotalActivity()
	max := total/10 - 1
	if max < 1 {
		return
	}
	r := 1 + rng.Intn(max)
	m := topMonth + 1 + rng.Intn(s.PUP-topMonth-1)
	s.Monthly[m] += r
}

// earlyLo picks the lower bound of the "early" birth window: half the
// early-born projects land beyond 10% of project time, matching the
// paper's §3.4 statistic that about half the corpus is born within the
// first 10%.
func earlyLo(rng *rand.Rand) float64 {
	if rng.Float64() < 0.5 {
		return 0.1
	}
	return 0
}

// genRadicalSign: early birth, immediate rise to the top band, long
// frozen tail (Def 4.2).
func genRadicalSign(rng *rand.Rand, bucket BirthBucket) (*Schedule, error) {
	bm := bucket.monthIn(rng, 30)
	var pup int
	var err error
	if bm == 0 {
		pup = randPUP(rng, 14)
	} else {
		pup, err = pupForBirthPct(rng, bm, earlyLo(rng), 0.25)
		if err != nil {
			return nil, err
		}
	}
	s := newSchedule(pup, 0.85)
	birth := 4 + lognormInt(rng, 18, 0.7)
	post := lognormInt(rng, 13, 0.8)
	lastEarly := monthAtPct(0.25, pup)
	tm := bm
	if bm == 0 || rng.Float64() < 0.5 {
		// A separate top-band month: must stay in the early quarter and,
		// for V_p^0 births, must exist (otherwise the project is a
		// flatliner).
		if lastEarly <= bm {
			return nil, fmt.Errorf("synth: no early room after month %d in %d months", bm, pup)
		}
		tm = bm + 1 + rng.Intn(lastEarly-bm)
	}
	if tm == bm {
		s.Monthly[bm] = birth + post
		return s, nil
	}
	// The birth must stay below the top band until tm.
	if need := birth/8 + 1; post < need {
		post = need
	}
	s.Monthly[bm] = birth
	// Occasionally one small step inside the vault (Fig. 4 allows 0-2
	// active growth months for the pattern).
	if tm-bm >= 2 && rng.Float64() < 0.2 && post > 3 {
		step := 1 + rng.Intn(2)
		s.Monthly[bm+1+rng.Intn(tm-bm-1)] = step
		post -= step
	}
	s.Monthly[tm] += post
	return s, nil
}

// genSigmoid: middle-life birth, sharp rise, frozen tail (Def 4.3).
func genSigmoid(rng *rand.Rand, bucket BirthBucket) (*Schedule, error) {
	bm := bucket.monthIn(rng, 50)
	pup, err := pupForBirthPct(rng, bm, 0.25, 0.75)
	if err != nil {
		return nil, err
	}
	s := newSchedule(pup, 0.9)
	v := 5 + lognormInt(rng, 25, 0.6)
	tm := bm
	if rng.Float64() < 0.25 && bm+1 < pup && v >= 10 {
		// Two-shot variant: 85% at birth, the rest right after.
		first := v * 85 / 100
		s.Monthly[bm] = first
		s.Monthly[bm+1] = v - first
		tm = bm + 1
	} else {
		s.Monthly[bm] = v
	}
	maybeResidual(rng, s, tm, 0.35)
	return s, nil
}

// genLateRiser: late birth, immediate freeze (Def 4.4).
func genLateRiser(rng *rand.Rand, _ BirthBucket) (*Schedule, error) {
	bm := 13 + rng.Intn(48)
	pup, err := pupForBirthPct(rng, bm, 0.75, 0.99)
	if err != nil {
		return nil, err
	}
	s := newSchedule(pup, 0.9)
	s.Monthly[bm] = 4 + lognormInt(rng, 22, 0.6)
	maybeResidual(rng, s, bm, 0.3)
	return s, nil
}

// spreadSteps places k active months strictly between bm and tm; it
// reduces k when the interval is too narrow and returns the chosen
// months.
func spreadSteps(rng *rand.Rand, bm, tm, k int) []int {
	room := tm - bm - 1
	if k > room {
		k = room
	}
	if k <= 0 {
		return nil
	}
	seen := map[int]bool{}
	var months []int
	for len(months) < k {
		m := bm + 1 + rng.Intn(room)
		if !seen[m] {
			seen[m] = true
			months = append(months, m)
		}
	}
	return months
}

// genQuantumA: early birth, a few focused steps, middle top band
// (Def 4.5, first variant).
func genQuantumA(rng *rand.Rand, bucket BirthBucket) (*Schedule, error) {
	bm := bucket.monthIn(rng, 20)
	var pup int
	var err error
	if bm == 0 {
		pup = randPUP(rng, 24)
	} else {
		pup, err = pupForBirthPct(rng, bm, earlyLo(rng), 0.25)
		if err != nil {
			return nil, err
		}
	}
	tm := monthAtPct(0.3+rng.Float64()*0.4, pup)
	if tm <= bm+1 {
		return nil, fmt.Errorf("synth: no room for quantum journey (%d..%d)", bm, tm)
	}
	s := newSchedule(pup, 0.8)
	post := 3 + lognormInt(rng, 20, 0.6)
	birth := 3 + lognormInt(rng, 18, 0.7)
	s.Monthly[bm] = birth
	steps := spreadSteps(rng, bm, tm, rng.Intn(4))
	remaining := post
	final := remaining/3 + 1 // the top-band crossing burst
	remaining -= final
	for _, m := range steps {
		v := 1
		if remaining > len(steps) {
			v = 1 + rng.Intn(remaining/len(steps))
		}
		if v > remaining {
			v = remaining
		}
		s.Monthly[m] = v
		remaining -= v
	}
	s.Monthly[tm] = final + remaining
	return s, nil
}

// genQuantumB: middle birth, few steps, late top band (Def 4.5, second
// variant).
func genQuantumB(rng *rand.Rand, _ BirthBucket) (*Schedule, error) {
	bm := 13 + rng.Intn(30)
	pup, err := pupForBirthPct(rng, bm, 0.27, 0.6)
	if err != nil {
		return nil, err
	}
	tm := monthAtPct(0.8+rng.Float64()*0.15, pup)
	if tm <= bm+1 {
		return nil, fmt.Errorf("synth: no room for quantum-B journey")
	}
	s := newSchedule(pup, 0.8)
	birth := 3 + lognormInt(rng, 15, 0.6)
	post := 3 + lognormInt(rng, 20, 0.6)
	s.Monthly[bm] = birth
	steps := spreadSteps(rng, bm, tm, 1+rng.Intn(3))
	remaining := post
	final := remaining/3 + 1
	remaining -= final
	for _, m := range steps {
		v := 1
		if remaining > len(steps) {
			v = 1 + rng.Intn(remaining/len(steps))
		}
		if v > remaining {
			v = remaining
		}
		s.Monthly[m] = v
		remaining -= v
	}
	s.Monthly[tm] = final + remaining
	return s, nil
}

// fillRegular distributes post-birth activity over many active months
// between bm and tm such that the 90% threshold is crossed only at tm.
func fillRegular(rng *rand.Rand, s *Schedule, bm, tm, birth, post, k int) error {
	steps := spreadSteps(rng, bm, tm, k)
	if len(steps) < 4 {
		return fmt.Errorf("synth: only %d step months between %d and %d", len(steps), bm, tm)
	}
	s.Monthly[bm] = birth
	total := birth + post
	// Keep cumulative below 90% before tm: the final month carries at
	// least 12% of the total.
	final := total*12/100 + 1
	if final > post {
		final = post
	}
	remaining := post - final
	per := remaining / len(steps)
	for i, m := range steps {
		v := per/2 + rng.Intn(per+1)
		if i == len(steps)-1 || v > remaining {
			v = remaining
		}
		if v <= 0 {
			v = 1
			if remaining <= 0 {
				v = 0
			}
		}
		s.Monthly[m] = v
		remaining -= v
	}
	s.Monthly[tm] = final + remaining
	return nil
}

// genRegularEarly: early birth, steady maintenance to a middle-or-late
// top band (Def 4.6, first variant).
func genRegularEarly(rng *rand.Rand, bucket BirthBucket) (*Schedule, error) {
	bm := bucket.monthIn(rng, 18)
	var pup int
	var err error
	if bm == 0 {
		pup = randPUP(rng, 30)
	} else {
		pup, err = pupForBirthPct(rng, bm, earlyLo(rng), 0.25)
		if err != nil {
			return nil, err
		}
	}
	if pup < 30 {
		pup = 30 + rng.Intn(40)
	}
	tm := monthAtPct(0.55+rng.Float64()*0.4, pup)
	if tm-bm < 8 {
		return nil, fmt.Errorf("synth: journey too short for regular curation")
	}
	s := newSchedule(pup, 0.75)
	birth := 5 + lognormInt(rng, 30, 0.6)
	post := 50 + lognormInt(rng, 250, 0.5)
	k := 5 + rng.Intn(10)
	if err := fillRegular(rng, s, bm, tm, birth, post, k); err != nil {
		return nil, err
	}
	return s, nil
}

// genRegularMiddle: middle birth, steady maintenance to a late top band
// (Def 4.6, second variant).
func genRegularMiddle(rng *rand.Rand, _ BirthBucket) (*Schedule, error) {
	bm := 13 + rng.Intn(25)
	pup, err := pupForBirthPct(rng, bm, 0.27, 0.55)
	if err != nil {
		return nil, err
	}
	if pup < 35 {
		return nil, fmt.Errorf("synth: project too short for middle regular curation")
	}
	tm := monthAtPct(0.82+rng.Float64()*0.14, pup)
	if tm-bm < 6 {
		return nil, fmt.Errorf("synth: journey too short")
	}
	s := newSchedule(pup, 0.75)
	birth := 5 + lognormInt(rng, 25, 0.6)
	post := 50 + lognormInt(rng, 250, 0.5)
	k := 5 + rng.Intn(8)
	if err := fillRegular(rng, s, bm, tm, birth, post, k); err != nil {
		return nil, err
	}
	return s, nil
}

// genSiesta: early birth, long idleness, late focused change (Def 4.7).
func genSiesta(rng *rand.Rand, bucket BirthBucket) (*Schedule, error) {
	bm := bucket.monthIn(rng, 12)
	var pup int
	var err error
	if bm == 0 {
		pup = randPUP(rng, 30)
	} else {
		pup, err = pupForBirthPct(rng, bm, 0, 0.2)
		if err != nil {
			return nil, err
		}
	}
	bmPct := float64(bm) / float64(pup-1)
	tm := monthAtPct(bmPct+0.78+rng.Float64()*0.15, pup)
	if tm >= pup {
		tm = pup - 1
	}
	if float64(tm-bm)/float64(pup-1) <= 0.75 {
		return nil, fmt.Errorf("synth: siesta interval not very long")
	}
	s := newSchedule(pup, 0.7)
	post := 3 + lognormInt(rng, 17, 0.7)
	frac := 0.3 + rng.Float64()*0.4
	birth := int(float64(post)*frac/(1-frac)) + 1
	s.Monthly[bm] = birth
	// Up to 2 small nudges shortly before the final late burst.
	k := rng.Intn(3)
	remaining := post
	for i := 0; i < k && tm-2-i > bm && remaining > 2; i++ {
		s.Monthly[tm-1-i] = 1
		remaining--
	}
	s.Monthly[tm] = remaining
	return s, nil
}

// genSmokingFunnel: middle birth at medium volume, dense change through a
// fair interval, change continuing in the tail (Def 4.8).
func genSmokingFunnel(rng *rand.Rand, _ BirthBucket) (*Schedule, error) {
	bm := 13 + rng.Intn(25)
	pup, err := pupForBirthPct(rng, bm, 0.27, 0.5)
	if err != nil {
		return nil, err
	}
	iPct := 0.14 + rng.Float64()*0.18
	tm := bm + int(iPct*float64(pup-1))
	if float64(tm)/float64(pup-1) > 0.73 || tm-bm < 6 {
		return nil, fmt.Errorf("synth: funnel window does not fit")
	}
	s := newSchedule(pup, 0.75)
	post := 60 + lognormInt(rng, 189, 0.5)
	frac := 0.3 + rng.Float64()*0.25
	birth := int(float64(post)*frac/(1-frac)) + 1
	// Tail change after the top band: at most 8% of the total.
	total := birth + post
	tail := total * 5 / 100
	k := 4 + rng.Intn(6)
	if err := fillRegular(rng, s, bm, tm, birth, post-tail, k); err != nil {
		return nil, err
	}
	for i := 0; i < 3 && tail > 0; i++ {
		m := tm + 1 + rng.Intn(pup-tm-1)
		v := tail/2 + 1
		s.Monthly[m] += v
		tail -= v
	}
	return s, nil
}

// Exception generators — the Table 2 projects the manual grouping kept in
// a pattern despite violating its formal definition.

// genSigmoidExcEarly: visually a sigmoid but born early (§5.2 lists two
// sigmoid members violating the middle-born clause).
func genSigmoidExcEarly(rng *rand.Rand, bucket BirthBucket) (*Schedule, error) {
	bm := bucket.monthIn(rng, 12)
	if bm == 0 {
		bm = 3
	}
	pup, err := pupForBirthPct(rng, bm, 0.12, 0.25)
	if err != nil {
		return nil, err
	}
	s := newSchedule(pup, 0.9)
	s.Monthly[bm] = 5 + lognormInt(rng, 25, 0.5)
	return s, nil
}

// genLateRiserExcMiddle: a late riser attaining the top band in middle
// life (§5.2's late-riser exception).
func genLateRiserExcMiddle(rng *rand.Rand, _ BirthBucket) (*Schedule, error) {
	bm := 13 + rng.Intn(20)
	pup, err := pupForBirthPct(rng, bm, 0.68, 0.74)
	if err != nil {
		return nil, err
	}
	s := newSchedule(pup, 0.9)
	s.Monthly[bm] = 4 + lognormInt(rng, 20, 0.5)
	return s, nil
}

// genQuantumExcLateTop: a quantum-steps member reaching the top late
// rather than middle (§5.2).
func genQuantumExcLateTop(rng *rand.Rand, bucket BirthBucket) (*Schedule, error) {
	bm := bucket.monthIn(rng, 10)
	if bm == 0 {
		bm = 2
	}
	pup, err := pupForBirthPct(rng, bm, 0.08, 0.2)
	if err != nil {
		return nil, err
	}
	bmPct := float64(bm) / float64(pup-1)
	tm := monthAtPct(bmPct+0.55+rng.Float64()*0.15, pup) // long, not very long
	if tm <= bm+2 || tm >= pup {
		return nil, fmt.Errorf("synth: quantum exception window does not fit")
	}
	if float64(tm)/float64(pup-1) <= 0.75 {
		return nil, fmt.Errorf("synth: quantum exception top not late")
	}
	s := newSchedule(pup, 0.8)
	birth := 3 + lognormInt(rng, 18, 0.5)
	post := 3 + lognormInt(rng, 20, 0.5)
	s.Monthly[bm] = birth
	steps := spreadSteps(rng, bm, tm, 2)
	remaining := post
	for _, m := range steps {
		s.Monthly[m] = 1
		remaining--
	}
	s.Monthly[tm] = remaining
	return s, nil
}

// genQuantumExcFairSigmoid: a quantum-steps member sitting in sigmoid
// territory but with a fair interval and a couple of steps.
func genQuantumExcFairSigmoid(rng *rand.Rand, _ BirthBucket) (*Schedule, error) {
	bm := 13 + rng.Intn(20)
	pup, err := pupForBirthPct(rng, bm, 0.27, 0.5)
	if err != nil {
		return nil, err
	}
	tm := bm + int((0.15+rng.Float64()*0.1)*float64(pup-1))
	if tm <= bm+2 || float64(tm)/float64(pup-1) > 0.73 {
		return nil, fmt.Errorf("synth: exception window does not fit")
	}
	s := newSchedule(pup, 0.8)
	birth := 3 + lognormInt(rng, 18, 0.5)
	post := 3 + lognormInt(rng, 22, 0.5)
	s.Monthly[bm] = birth
	steps := spreadSteps(rng, bm, tm, 2)
	remaining := post
	for _, m := range steps {
		s.Monthly[m] = 1
		remaining--
	}
	s.Monthly[tm] = remaining
	return s, nil
}

// genSiestaExcActive: a siesta member whose late change has more than 3
// active growth months (§5.2 lists two).
func genSiestaExcActive(rng *rand.Rand, bucket BirthBucket) (*Schedule, error) {
	bm := bucket.monthIn(rng, 8)
	pup := randPUP(rng, 40)
	bmPct := float64(bm) / float64(pup-1)
	if bmPct > 0.15 {
		return nil, fmt.Errorf("synth: siesta exception birth too late")
	}
	tm := monthAtPct(bmPct+0.8+rng.Float64()*0.12, pup)
	if tm >= pup {
		tm = pup - 1
	}
	if float64(tm-bm)/float64(pup-1) <= 0.75 || tm-bm < 7 {
		return nil, fmt.Errorf("synth: siesta exception interval not very long")
	}
	s := newSchedule(pup, 0.7)
	post := 5 + lognormInt(rng, 18, 0.4)
	birth := post
	s.Monthly[bm] = birth
	k := 4 + rng.Intn(2)
	remaining := post
	for i := 0; i < k; i++ {
		s.Monthly[tm-1-i] = 1
		remaining--
	}
	s.Monthly[tm] = remaining
	return s, nil
}

// genSiestaExcLong: a siesta member reaching growth merely "long" (not
// "very long") after birth (§5.2 lists one).
func genSiestaExcLong(rng *rand.Rand, bucket BirthBucket) (*Schedule, error) {
	bm := bucket.monthIn(rng, 10)
	if bm == 0 {
		bm = 8
	}
	pup, err := pupForBirthPct(rng, bm, 0.1, 0.2)
	if err != nil {
		return nil, err
	}
	bmPct := float64(bm) / float64(pup-1)
	tm := monthAtPct(bmPct+0.58+rng.Float64()*0.1, pup)
	if float64(tm)/float64(pup-1) <= 0.75 || tm <= bm+2 {
		return nil, fmt.Errorf("synth: exception window does not fit")
	}
	s := newSchedule(pup, 0.7)
	post := 4 + lognormInt(rng, 16, 0.5)
	birth := post
	s.Monthly[bm] = birth
	s.Monthly[tm-1] = 1
	s.Monthly[tm] = post - 1
	return s, nil
}
