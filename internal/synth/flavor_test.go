package synth

import (
	"math/rand"
	"testing"
	"time"

	"schemaevo/internal/core"
	"schemaevo/internal/history"
	"schemaevo/internal/sqlddl"
	"schemaevo/internal/sqlddl/dialect"
)

// flavorCases pairs each concrete flavor with the dialect its text must
// detect as.
var flavorCases = []struct {
	flavor Flavor
	want   sqlddl.DialectID
}{
	{FlavorMySQL, sqlddl.DialectMySQL},
	{FlavorPostgres, sqlddl.DialectPostgres},
	{FlavorSQLite, sqlddl.DialectSQLite},
}

// realizeFlavorPair realizes the same schedule under generic and a
// concrete flavor with identical rng streams, in the given style.
func realizeFlavorPair(t *testing.T, style Style, flavor Flavor) (generic, flavored *history.History) {
	t.Helper()
	s, err := generateVerified(rand.New(rand.NewSource(21)), genRegularEarly, BornM0,
		core.RegularlyCurated, false, scheme)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2013, 3, 1, 0, 0, 0, 0, time.UTC)
	g, err := RealizeFlavored(s, "g", start, rand.New(rand.NewSource(5)), style, FlavorGeneric)
	if err != nil {
		t.Fatal(err)
	}
	f, err := RealizeFlavored(s, "f", start, rand.New(rand.NewSource(5)), style, flavor)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := history.FromRepo(g)
	if err != nil {
		t.Fatal(err)
	}
	hf, err := history.FromRepo(f)
	if err != nil {
		t.Fatal(err)
	}
	return hg, hf
}

// TestFlavoredRealizationMatchesGenericHeartbeat: restyling the DDL in a
// concrete dialect never perturbs the measured monthly heartbeat — the
// invariance the cross-dialect experiment table rests on.
func TestFlavoredRealizationMatchesGenericHeartbeat(t *testing.T) {
	for _, tc := range flavorCases {
		for _, style := range []Style{FullDump, MigrationScript} {
			hg, hf := realizeFlavorPair(t, style, tc.flavor)
			if len(hg.SchemaMonthly) != len(hf.SchemaMonthly) {
				t.Fatalf("%v style %v: heartbeat lengths differ", tc.flavor, style)
			}
			for m := range hg.SchemaMonthly {
				if hg.SchemaMonthly[m] != hf.SchemaMonthly[m] {
					t.Fatalf("%v style %v: month %d heartbeat %d (generic) vs %d (flavored)",
						tc.flavor, style, m, hg.SchemaMonthly[m], hf.SchemaMonthly[m])
				}
			}
		}
	}
}

// TestFlavoredFilesDetectAsOwnDialect: every version of a flavored repo's
// DDL file — dump or migration style — detects as the flavor's dialect,
// and auto-dialect history extraction records it.
func TestFlavoredFilesDetectAsOwnDialect(t *testing.T) {
	s, err := generateVerified(rand.New(rand.NewSource(33)), genRadicalSign, BornM0,
		core.RadicalSign, false, scheme)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2011, 9, 1, 0, 0, 0, 0, time.UTC)
	for _, tc := range flavorCases {
		for _, style := range []Style{FullDump, MigrationScript} {
			repo, err := RealizeFlavored(s, "det", start, rand.New(rand.NewSource(3)), style, tc.flavor)
			if err != nil {
				t.Fatal(err)
			}
			path := repo.MainDDLPath()
			for i, fv := range repo.FileHistory(path) {
				if fv.Deleted {
					continue
				}
				if got := dialect.DetectID(fv.Content); got != tc.want {
					t.Fatalf("%v style %v: version %d detected as %v", tc.flavor, style, i, got)
				}
			}
			h, err := history.FromRepoFileDialect(repo, path, nil)
			if err != nil {
				t.Fatal(err)
			}
			if h.Dialect != tc.want {
				t.Errorf("%v style %v: auto-detected history dialect = %v", tc.flavor, style, h.Dialect)
			}
			if h.NoteCount() != 0 {
				t.Errorf("%v style %v: %d parse notes under own adapter", tc.flavor, style, h.NoteCount())
			}
		}
	}
}

// TestPaperCorpusDialectMatchesGeneric: the flavored paper corpus has the
// same projects (names, ground truth, commit schedule) as the generic one
// for the same seed, and tags each project with the dialect.
func TestPaperCorpusDialectMatchesGeneric(t *testing.T) {
	gen, err := PaperCorpus(13)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mysql", "postgres", "sqlite"} {
		c, err := PaperCorpusDialect(13, name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Len() != gen.Len() {
			t.Fatalf("%s: %d projects, generic has %d", name, c.Len(), gen.Len())
		}
		for i, p := range c.Projects {
			g := gen.Projects[i]
			if p.Name != g.Name || p.GroundTruth != g.GroundTruth {
				t.Fatalf("%s: project %d is %s/%v, generic %s/%v",
					name, i, p.Name, p.GroundTruth, g.Name, g.GroundTruth)
			}
			if len(p.Repo.Commits) != len(g.Repo.Commits) {
				t.Fatalf("%s: %s commit counts diverge", name, p.Name)
			}
			if p.Dialect != name {
				t.Fatalf("%s: %s tagged %q", name, p.Name, p.Dialect)
			}
		}
	}
	if _, err := PaperCorpusDialect(13, "oracle"); err == nil {
		t.Error("unknown dialect accepted")
	}
}

// TestGenericFlavorIsByteIdentical: FlavorGeneric must reproduce the
// pre-flavor rendering byte-for-byte — the reproduce goldens pin it.
func TestGenericFlavorIsByteIdentical(t *testing.T) {
	s, err := generateVerified(rand.New(rand.NewSource(2)), genSigmoid, BornAfterM12,
		core.Sigmoid, false, scheme)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	a, err := RealizeStyled(s, "x", start, rand.New(rand.NewSource(9)), FullDump)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RealizeFlavored(s, "x", start, rand.New(rand.NewSource(9)), FullDump, FlavorGeneric)
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := a.FileHistory(a.MainDDLPath()), b.FileHistory(b.MainDDLPath())
	if len(pa) != len(pb) {
		t.Fatal("version counts differ")
	}
	for i := range pa {
		if pa[i].Content != pb[i].Content {
			t.Fatalf("version %d: generic flavor not byte-identical", i)
		}
	}
}
