package synth

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"schemaevo/internal/vcs"
)

// typePalette lists column types that are pairwise distinct under
// schema.NormalizeType, so a generated type change is always a real
// logical change.
var typePalette = []string{
	"int", "bigint", "smallint", "varchar(255)", "varchar(100)", "text",
	"timestamp", "date", "bool", "double", "numeric(10,2)", "blob", "char(1)",
}

// Flavor selects the SQL dialect the generated DDL text is written in.
// Flavors change only the surface syntax — identifier quoting, dump
// headers, engine clauses, the auto-increment spelling — never the
// logical schema or the per-month attribute costs: every flavor of the
// same seed yields identical heartbeats, measures and patterns. The
// cross-dialect experiment table leans on exactly that invariance.
type Flavor int

const (
	FlavorGeneric Flavor = iota
	FlavorMySQL
	FlavorPostgres
	FlavorSQLite
)

func (f Flavor) String() string {
	switch f {
	case FlavorMySQL:
		return "mysql"
	case FlavorPostgres:
		return "postgres"
	case FlavorSQLite:
		return "sqlite"
	}
	return "generic"
}

// FlavorByName resolves a dialect name ("" and "generic" both select the
// generic flavor).
func FlavorByName(name string) (Flavor, bool) {
	switch name {
	case "", "generic":
		return FlavorGeneric, true
	case "mysql":
		return FlavorMySQL, true
	case "postgres":
		return FlavorPostgres, true
	case "sqlite":
		return FlavorSQLite, true
	}
	return FlavorGeneric, false
}

type genCol struct {
	name string
	typ  string
	pk   bool
	fk   string // referenced table name, "" when not a foreign key
	// fkRefCol is the referenced column (the target's primary key).
	fkRefCol string
	born     int // month the column appeared
	// touched is the last month a maintenance op targeted the column;
	// a second same-month op would break the exact-cost accounting.
	touched int
}

type genTable struct {
	name    string
	cols    []*genCol
	born    int
	inbound int // number of FK columns elsewhere referencing this table
	touched int // last month a structural op targeted the table
}

// builder evolves an in-memory schema and renders full SQL dumps. Every
// operation has an exact attribute cost equal to what diff.Schemas will
// measure between the month's snapshots.
type builder struct {
	rng       *rand.Rand
	flavor    Flavor
	tables    []*genTable
	nextTable int
	nextCol   int
	// recordMigrations switches the builder into migration-log mode:
	// every operation also appends the equivalent DDL statement to
	// migrations, so the schema file can be realized as an append-only
	// script instead of a full dump.
	recordMigrations bool
	migrations       []string
}

func newBuilder(rng *rand.Rand) *builder {
	return &builder{rng: rng}
}

func (b *builder) logMigration(format string, args ...any) {
	if b.recordMigrations {
		b.migrations = append(b.migrations, fmt.Sprintf(format, args...))
	}
}

// q renders an identifier in the flavor's quoting style. Quoting is
// logically invisible (the parser unquotes back to the same name), so it
// never perturbs the diff costs — it only feeds dialect detection.
func (b *builder) q(name string) string {
	if b.flavor == FlavorMySQL {
		return "`" + name + "`"
	}
	return name
}

// colDef renders one column definition. The PostgreSQL pk spelling is
// "serial" and the MySQL one carries AUTO_INCREMENT; both are constant
// across every version of a repo, so no cross-version delta ever sees
// them.
func (b *builder) colDef(c *genCol) string {
	typ := c.typ
	if c.pk && b.flavor == FlavorPostgres {
		typ = "serial"
	}
	def := b.q(c.name) + " " + typ
	if c.pk {
		def += " NOT NULL"
		if b.flavor == FlavorMySQL {
			def += " AUTO_INCREMENT"
		}
	}
	return def
}

func (b *builder) newColName() string {
	b.nextCol++
	return fmt.Sprintf("c%d", b.nextCol)
}

func (b *builder) pickType() string {
	return typePalette[b.rng.Intn(len(typePalette))]
}

// addTable creates a table with k columns (k >= 1); the first column is
// an integer primary key. Cost: k.
func (b *builder) addTable(month, k int) {
	b.nextTable++
	t := &genTable{name: fmt.Sprintf("t%d", b.nextTable), born: month, touched: month}
	t.cols = append(t.cols, &genCol{name: b.newColName(), typ: "int", pk: true, born: month, touched: month})
	for i := 1; i < k; i++ {
		t.cols = append(t.cols, &genCol{name: b.newColName(), typ: b.pickType(), born: month, touched: month})
	}
	b.tables = append(b.tables, t)
	if b.recordMigrations {
		var cols []string
		for _, c := range t.cols {
			cols = append(cols, b.colDef(c))
		}
		b.logMigration("CREATE TABLE %s (%s, PRIMARY KEY (%s));",
			b.q(t.name), strings.Join(cols, ", "), b.q(t.cols[0].name))
	}
}

// inject adds one plain column to a random table, creating a single-column
// table when the schema is empty. Cost: 1.
func (b *builder) inject(month int) {
	if len(b.tables) == 0 {
		b.addTable(month, 1)
		return
	}
	t := b.tables[b.rng.Intn(len(b.tables))]
	c := &genCol{name: b.newColName(), typ: b.pickType(), born: month, touched: month}
	t.cols = append(t.cols, c)
	t.touched = month
	b.logMigration("ALTER TABLE %s ADD COLUMN %s %s;", b.q(t.name), b.q(c.name), c.typ)
}

// plainCols returns maintenance-eligible columns of t: no key role, born
// before this month, untouched this month.
func plainCols(t *genTable, month int) []*genCol {
	var out []*genCol
	for _, c := range t.cols {
		if !c.pk && c.fk == "" && c.born < month && c.touched < month {
			out = append(out, c)
		}
	}
	return out
}

// pickMaintTarget finds a (table, plain column) pair eligible for a
// 1-attribute maintenance op, or nil.
func (b *builder) pickMaintTarget(month int) (*genTable, *genCol) {
	// Scan from a random start so targets spread across tables.
	if len(b.tables) == 0 {
		return nil, nil
	}
	start := b.rng.Intn(len(b.tables))
	for i := 0; i < len(b.tables); i++ {
		t := b.tables[(start+i)%len(b.tables)]
		if cands := plainCols(t, month); len(cands) > 0 {
			return t, cands[b.rng.Intn(len(cands))]
		}
	}
	return nil, nil
}

// eject removes one eligible plain column. Cost: 1. Returns false when no
// column is eligible.
func (b *builder) eject(month int) bool {
	t, c := b.pickMaintTarget(month)
	if c == nil {
		return false
	}
	if len(t.cols) < 2 {
		return false
	}
	for i, tc := range t.cols {
		if tc == c {
			t.cols = append(t.cols[:i], t.cols[i+1:]...)
			break
		}
	}
	t.touched = month
	b.logMigration("ALTER TABLE %s DROP COLUMN %s;", b.q(t.name), b.q(c.name))
	return true
}

// changeType switches one eligible column to a different palette type.
// Cost: 1.
func (b *builder) changeType(month int) bool {
	t, c := b.pickMaintTarget(month)
	if c == nil {
		return false
	}
	for {
		if nt := b.pickType(); nt != c.typ {
			c.typ = nt
			break
		}
	}
	c.touched = month
	// Mark the table too: a same-month drop would swallow this change
	// and break the exact-cost accounting.
	t.touched = month
	b.logMigration("ALTER TABLE %s MODIFY COLUMN %s %s;", b.q(t.name), b.q(c.name), c.typ)
	return true
}

// addFK turns one eligible column into a foreign key to another table.
// Cost: 1 (the column's key membership changes).
func (b *builder) addFK(month int) bool {
	if len(b.tables) < 2 {
		return false
	}
	t, c := b.pickMaintTarget(month)
	if c == nil {
		return false
	}
	var refs []*genTable
	for _, rt := range b.tables {
		if rt != t {
			refs = append(refs, rt)
		}
	}
	if len(refs) == 0 {
		return false
	}
	ref := refs[b.rng.Intn(len(refs))]
	c.fk = ref.name
	c.fkRefCol = ref.cols[0].name
	c.touched = month
	t.touched = month // protect from a same-month drop (exact costs)
	ref.inbound++
	b.logMigration("ALTER TABLE %s ADD FOREIGN KEY (%s) REFERENCES %s (%s);",
		b.q(t.name), b.q(c.name), b.q(ref.name), b.q(c.fkRefCol))
	return true
}

// dropTable removes one table that pre-exists this month, is referenced
// by nobody, was not touched this month, and has at most maxCost columns.
// It returns the cost (column count) or 0 when no table is eligible.
func (b *builder) dropTable(month, maxCost int) int {
	if len(b.tables) < 2 {
		return 0
	}
	start := b.rng.Intn(len(b.tables))
	for i := 0; i < len(b.tables); i++ {
		idx := (start + i) % len(b.tables)
		t := b.tables[idx]
		if t.born >= month || t.inbound > 0 || t.touched >= month || len(t.cols) > maxCost {
			continue
		}
		// Release this table's outbound references.
		for _, c := range t.cols {
			if c.fk != "" {
				for _, rt := range b.tables {
					if rt.name == c.fk {
						rt.inbound--
						break
					}
				}
			}
		}
		cost := len(t.cols)
		b.tables = append(b.tables[:idx], b.tables[idx+1:]...)
		b.logMigration("DROP TABLE %s;", b.q(t.name))
		return cost
	}
	return 0
}

// realizeMonth applies operations worth exactly `budget` affected
// attributes, aiming for the given expansion share; any maintenance
// budget that finds no eligible target falls back to expansion (which is
// always realizable).
func (b *builder) realizeMonth(month, budget int, expShare float64) {
	maint := int(float64(budget)*(1-expShare) + 0.5)
	if maint > budget {
		maint = budget
	}
	exp := budget - maint
	for maint > 0 {
		switch b.rng.Intn(4) {
		case 0:
			if cost := b.dropTable(month, maint); cost > 0 {
				maint -= cost
				continue
			}
		case 1:
			if b.eject(month) {
				maint--
				continue
			}
		case 2:
			if b.addFK(month) {
				maint--
				continue
			}
		default:
		}
		if b.changeType(month) {
			maint--
			continue
		}
		if b.eject(month) {
			maint--
			continue
		}
		// No maintenance target available: convert the rest to expansion.
		exp += maint
		maint = 0
	}
	for exp > 0 {
		if exp >= 3 && b.rng.Float64() < 0.6 {
			k := 2 + b.rng.Intn(min(7, exp-1))
			b.addTable(month, k)
			exp -= k
			continue
		}
		b.inject(month)
		exp--
	}
}

// Dump renders the current schema as a full SQL snapshot. Beside the
// CREATE TABLE statements it emits the schema-neutral noise real dumps
// carry — SET headers, secondary indexes, a view — so the parser's
// non-logical paths get corpus-scale load; none of it affects the
// attribute-level diff.
func (b *builder) Dump() string {
	var sb strings.Builder
	sb.WriteString(b.dumpHeader())
	for _, t := range b.tables {
		fmt.Fprintf(&sb, "CREATE TABLE %s (\n", b.q(t.name))
		for i, c := range t.cols {
			if i > 0 {
				sb.WriteString(",\n")
			}
			sb.WriteString("  ")
			sb.WriteString(b.colDef(c))
		}
		for _, c := range t.cols {
			if c.pk {
				fmt.Fprintf(&sb, ",\n  PRIMARY KEY (%s)", b.q(c.name))
			}
		}
		for _, c := range t.cols {
			if c.fk != "" {
				fmt.Fprintf(&sb, ",\n  FOREIGN KEY (%s) REFERENCES %s (%s)", b.q(c.name), b.q(c.fk), b.q(c.fkRefCol))
			}
		}
		if b.flavor == FlavorMySQL {
			sb.WriteString("\n) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;\n\n")
		} else {
			sb.WriteString("\n);\n\n")
		}
		// Every fourth table carries a secondary index on its last
		// column, as real dumps do.
		if len(t.cols) > 1 && b.nextTable%4 == 0 {
			last := t.cols[len(t.cols)-1]
			fmt.Fprintf(&sb, "CREATE INDEX idx_%s_%s ON %s (%s);\n\n", t.name, last.name, b.q(t.name), b.q(last.name))
		}
	}
	if len(b.tables) > 2 {
		fmt.Fprintf(&sb, "CREATE VIEW v_overview AS SELECT * FROM %s;\n", b.q(b.tables[0].name))
	}
	return sb.String()
}

// dumpHeader renders the flavor's dump preamble: the schema-neutral noise
// real dumps open with, and — for the concrete flavors — an unmistakable
// detection signal ('#' comment, search_path, PRAGMA).
func (b *builder) dumpHeader() string {
	switch b.flavor {
	case FlavorMySQL:
		return "# generated schema snapshot (MySQL dump)\nSET NAMES utf8mb4;\n"
	case FlavorPostgres:
		return "-- generated schema snapshot (PostgreSQL dump)\nSET search_path = public;\n"
	case FlavorSQLite:
		return "-- generated schema snapshot (SQLite dump)\nPRAGMA foreign_keys = ON;\n"
	}
	return "-- generated schema snapshot\nSET NAMES utf8;\n"
}

// migrationHeader is dumpHeader's counterpart for migration-script mode.
func (b *builder) migrationHeader() string {
	switch b.flavor {
	case FlavorMySQL:
		return "# migration script (MySQL)\n"
	case FlavorPostgres:
		return "-- migration script (PostgreSQL)\nSET search_path = public;\n"
	case FlavorSQLite:
		return "-- migration script (SQLite)\nPRAGMA foreign_keys = ON;\n"
	}
	return "-- migration script\n"
}

// Style selects how schema commits encode the schema file.
type Style int

// The two schema-file styles found in FOSS repositories.
const (
	// FullDump: each version is a complete dump of the schema (the
	// mysqldump / pg_dump style).
	FullDump Style = iota
	// MigrationScript: the schema file is an append-only script — the
	// initial CREATEs followed by the ALTER/CREATE/DROP statements of
	// every later change (the migrations.sql style).
	MigrationScript
)

// Realize turns a schedule into a concrete repository: full-dump schema
// commits on each scheduled month and a source-code heartbeat across the
// project's life.
func Realize(s *Schedule, name string, start time.Time, rng *rand.Rand) (*vcs.Repo, error) {
	return RealizeStyled(s, name, start, rng, FullDump)
}

// RealizeStyled is Realize with an explicit schema-file style. Both
// styles yield histories with identical monthly heartbeats (the analysis
// rebuilds each version's logical schema either way); they differ only in
// the SQL text the parser must chew through.
func RealizeStyled(s *Schedule, name string, start time.Time, rng *rand.Rand, style Style) (*vcs.Repo, error) {
	return RealizeFlavored(s, name, start, rng, style, FlavorGeneric)
}

// RealizeFlavored is RealizeStyled with an explicit SQL flavor. The
// flavor restyles the DDL text only (quoting, headers, engine clauses);
// the commit schedule and every logical schema are those of the generic
// rendering, so measures and patterns are flavor-invariant per seed.
func RealizeFlavored(s *Schedule, name string, start time.Time, rng *rand.Rand, style Style, flavor Flavor) (*vcs.Repo, error) {
	b := newBuilder(rng)
	b.flavor = flavor
	b.recordMigrations = style == MigrationScript
	repo := &vcs.Repo{Name: name}
	commitSeq := 0
	addCommit := func(c vcs.Commit) {
		c.ID = fmt.Sprintf("%s-%04d", name, commitSeq)
		commitSeq++
		repo.Commits = append(repo.Commits, c)
	}
	for m := 0; m < s.PUP; m++ {
		monthStart := start.AddDate(0, m, 0)
		srcActive := m == 0 || m == s.PUP-1 || rng.Float64() < 0.8
		if srcActive {
			addCommit(vcs.Commit{
				Time:     monthStart.AddDate(0, 0, 4),
				Message:  "source work",
				Files:    map[string]string{"src/app.go": fmt.Sprintf("// revision for month %d\n", m)},
				SrcLines: 20 + lognormInt(rng, 120, 0.8),
			})
		}
		if s.Monthly[m] > 0 {
			b.realizeMonth(m, s.Monthly[m], s.ExpShare)
			content := b.Dump()
			if style == MigrationScript {
				content = b.migrationHeader() + strings.Join(b.migrations, "\n") + "\n"
			}
			addCommit(vcs.Commit{
				Time:    monthStart.AddDate(0, 0, 14),
				Message: fmt.Sprintf("schema update month %d", m),
				Files:   map[string]string{"db/schema.sql": content},
			})
		}
	}
	if err := repo.Validate(); err != nil {
		return nil, fmt.Errorf("synth: realized repo invalid: %w", err)
	}
	return repo, nil
}
