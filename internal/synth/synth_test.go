package synth

import (
	"math/rand"
	"testing"
	"time"

	"schemaevo/internal/core"
	"schemaevo/internal/history"
	"schemaevo/internal/metrics"
	"schemaevo/internal/quantize"
	"schemaevo/internal/schema"
)

var scheme = quantize.DefaultScheme()

func TestPaperSpecsSumTo151(t *testing.T) {
	pop := PaperPopulations()
	want := map[core.Pattern]int{
		core.Flatliner: 23, core.RadicalSign: 41, core.Sigmoid: 19,
		core.LateRiser: 14, core.QuantumSteps: 23, core.RegularlyCurated: 14,
		core.SmokingFunnel: 7, core.Siesta: 10,
	}
	total := 0
	for p, n := range want {
		if pop[p] != n {
			t.Errorf("%v population = %d, want %d", p, pop[p], n)
		}
		total += pop[p]
	}
	if total != 151 {
		t.Errorf("total = %d, want 151", total)
	}
}

func TestScheduleGeneratorsProduceTheirPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		name   string
		gen    generator
		bucket BirthBucket
		want   core.Pattern
	}{
		{"flatliner", genFlatliner, BornM0, core.Flatliner},
		{"radical-m0", genRadicalSign, BornM0, core.RadicalSign},
		{"radical-early", genRadicalSign, BornM1to6, core.RadicalSign},
		{"radical-m7", genRadicalSign, BornM7to12, core.RadicalSign},
		{"radical-late-born", genRadicalSign, BornAfterM12, core.RadicalSign},
		{"sigmoid", genSigmoid, BornAfterM12, core.Sigmoid},
		{"sigmoid-m7", genSigmoid, BornM7to12, core.Sigmoid},
		{"late-riser", genLateRiser, BornAfterM12, core.LateRiser},
		{"quantum-a", genQuantumA, BornM1to6, core.QuantumSteps},
		{"quantum-a-m0", genQuantumA, BornM0, core.QuantumSteps},
		{"quantum-b", genQuantumB, BornAfterM12, core.QuantumSteps},
		{"regular-early", genRegularEarly, BornM0, core.RegularlyCurated},
		{"regular-early-m7", genRegularEarly, BornM7to12, core.RegularlyCurated},
		{"regular-middle", genRegularMiddle, BornAfterM12, core.RegularlyCurated},
		{"siesta", genSiesta, BornM0, core.Siesta},
		{"siesta-early", genSiesta, BornM1to6, core.Siesta},
		{"smoking", genSmokingFunnel, BornAfterM12, core.SmokingFunnel},
	}
	for _, c := range cases {
		for trial := 0; trial < 10; trial++ {
			s, err := generateVerified(rng, c.gen, c.bucket, c.want, false, scheme)
			if err != nil {
				t.Fatalf("%s trial %d: %v", c.name, trial, err)
			}
			if got := s.Classify(scheme); got != c.want {
				t.Fatalf("%s trial %d: classified %v", c.name, trial, got)
			}
			if s.PUP <= 12 {
				t.Fatalf("%s: PUP %d <= 12", c.name, s.PUP)
			}
		}
	}
}

func TestExceptionGeneratorsViolateTheirPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cases := []struct {
		name   string
		gen    generator
		bucket BirthBucket
		host   core.Pattern
	}{
		{"sigmoid-exc", genSigmoidExcEarly, BornM1to6, core.Sigmoid},
		{"late-riser-exc", genLateRiserExcMiddle, BornAfterM12, core.LateRiser},
		{"quantum-exc-late", genQuantumExcLateTop, BornM1to6, core.QuantumSteps},
		{"quantum-exc-fair", genQuantumExcFairSigmoid, BornAfterM12, core.QuantumSteps},
		{"siesta-exc-active", genSiestaExcActive, BornM0, core.Siesta},
		{"siesta-exc-long", genSiestaExcLong, BornM7to12, core.Siesta},
	}
	for _, c := range cases {
		s, err := generateVerified(rng, c.gen, c.bucket, c.host, true, scheme)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := s.Classify(scheme); got == c.host {
			t.Errorf("%s: classified as its host pattern %v", c.name, got)
		}
	}
}

// TestRealizationIsExact: the realized repository's measured monthly
// heartbeat must equal the schedule, for a variety of schedules.
func TestRealizationIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	gens := []struct {
		gen    generator
		bucket BirthBucket
		want   core.Pattern
	}{
		{genFlatliner, BornM0, core.Flatliner},
		{genRadicalSign, BornM1to6, core.RadicalSign},
		{genRegularEarly, BornM0, core.RegularlyCurated},
		{genSmokingFunnel, BornAfterM12, core.SmokingFunnel},
		{genSiesta, BornM0, core.Siesta},
	}
	for _, g := range gens {
		for trial := 0; trial < 5; trial++ {
			s, err := generateVerified(rng, g.gen, g.bucket, g.want, false, scheme)
			if err != nil {
				t.Fatal(err)
			}
			repo, err := Realize(s, "exact", time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC), rng)
			if err != nil {
				t.Fatal(err)
			}
			h, err := history.FromRepo(repo)
			if err != nil {
				t.Fatal(err)
			}
			if h.Months() != s.PUP {
				t.Fatalf("%v trial %d: PUP %d, want %d", g.want, trial, h.Months(), s.PUP)
			}
			for m := range s.Monthly {
				if h.SchemaMonthly[m] != s.Monthly[m] {
					t.Fatalf("%v trial %d: month %d measured %d, scheduled %d\nmeasured: %v\nscheduled: %v",
						g.want, trial, m, h.SchemaMonthly[m], s.Monthly[m], h.SchemaMonthly, s.Monthly)
				}
			}
			if h.NoteCount() != 0 {
				t.Errorf("%v trial %d: %d parse/apply notes", g.want, trial, h.NoteCount())
			}
		}
	}
}

// TestRealizedClassificationMatchesGroundTruth: end-to-end through the
// real pipeline, realized projects classify as intended.
func TestRealizedClassificationMatchesGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, g := range []struct {
		gen    generator
		bucket BirthBucket
		want   core.Pattern
	}{
		{genFlatliner, BornM0, core.Flatliner},
		{genSigmoid, BornAfterM12, core.Sigmoid},
		{genLateRiser, BornAfterM12, core.LateRiser},
		{genQuantumB, BornAfterM12, core.QuantumSteps},
		{genRegularMiddle, BornAfterM12, core.RegularlyCurated},
	} {
		s, err := generateVerified(rng, g.gen, g.bucket, g.want, false, scheme)
		if err != nil {
			t.Fatal(err)
		}
		repo, err := Realize(s, "e2e", time.Date(2012, 6, 1, 0, 0, 0, 0, time.UTC), rng)
		if err != nil {
			t.Fatal(err)
		}
		h, err := history.FromRepo(repo)
		if err != nil {
			t.Fatal(err)
		}
		m := metrics.Compute(h)
		got := core.Classify(quantize.Compute(m, scheme))
		if got != g.want {
			t.Errorf("realized %v classified as %v", g.want, got)
		}
	}
}

func TestExpansionShareRoughlyHonored(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := generateVerified(rng, genRegularEarly, BornM0, core.RegularlyCurated, false, scheme)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := Realize(s, "mix", time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC), rng)
	if err != nil {
		t.Fatal(err)
	}
	h, err := history.FromRepo(repo)
	if err != nil {
		t.Fatal(err)
	}
	total := h.ExpansionTotal + h.MaintenanceTotal
	if total == 0 {
		t.Fatal("no activity")
	}
	expFrac := float64(h.ExpansionTotal) / float64(total)
	// Target is 0.75 with birth forced to expansion and fallbacks; allow
	// a wide band but require a clear expansion bias with some
	// maintenance present.
	if expFrac < 0.55 || expFrac > 0.99 {
		t.Errorf("expansion fraction = %.2f", expFrac)
	}
	if h.MaintenanceTotal == 0 {
		t.Error("no maintenance was realized at all")
	}
}

func TestRandomCorpusSmall(t *testing.T) {
	c, err := RandomCorpus(12, 99)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 12 {
		t.Fatalf("len = %d", c.Len())
	}
	if err := c.Analyze(scheme); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Projects {
		if !p.Measures.HasSchema {
			t.Errorf("%s has no schema activity", p.Name)
		}
		if got := core.Classify(p.Labels); got != p.GroundTruth {
			t.Errorf("%s: classified %v, ground truth %v", p.Name, got, p.GroundTruth)
		}
	}
}

func TestPaperCorpusDeterministic(t *testing.T) {
	a, err := PaperCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PaperCorpus(7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Projects {
		if a.Projects[i].Name != b.Projects[i].Name {
			t.Fatalf("project %d: %s vs %s", i, a.Projects[i].Name, b.Projects[i].Name)
		}
		if len(a.Projects[i].Repo.Commits) != len(b.Projects[i].Repo.Commits) {
			t.Fatalf("project %s: commit counts differ", a.Projects[i].Name)
		}
	}
}

// TestMigrationStyleRealizationIsExact: realizing a schedule as an
// append-only migration script yields the same measured heartbeat as the
// schedule (and therefore as the full-dump realization).
func TestMigrationStyleRealizationIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	gens := []struct {
		gen    generator
		bucket BirthBucket
		want   core.Pattern
	}{
		{genFlatliner, BornM0, core.Flatliner},
		{genRadicalSign, BornM1to6, core.RadicalSign},
		{genRegularEarly, BornM0, core.RegularlyCurated},
		{genSmokingFunnel, BornAfterM12, core.SmokingFunnel},
	}
	for _, g := range gens {
		for trial := 0; trial < 4; trial++ {
			s, err := generateVerified(rng, g.gen, g.bucket, g.want, false, scheme)
			if err != nil {
				t.Fatal(err)
			}
			repo, err := RealizeStyled(s, "mig", time.Date(2016, 2, 1, 0, 0, 0, 0, time.UTC), rng, MigrationScript)
			if err != nil {
				t.Fatal(err)
			}
			h, err := history.FromRepo(repo)
			if err != nil {
				t.Fatal(err)
			}
			if h.NoteCount() != 0 {
				for _, v := range h.Versions {
					for _, n := range v.Notes {
						t.Errorf("%v: note %v", g.want, n)
					}
				}
				t.Fatalf("%v: migration script did not re-apply cleanly", g.want)
			}
			for m := range s.Monthly {
				if h.SchemaMonthly[m] != s.Monthly[m] {
					t.Fatalf("%v trial %d: month %d measured %d, scheduled %d",
						g.want, trial, m, h.SchemaMonthly[m], s.Monthly[m])
				}
			}
			mm := metrics.Compute(h)
			if got := core.Classify(quantize.Compute(mm, scheme)); got != g.want {
				t.Errorf("%v: migration-style project classified as %v", g.want, got)
			}
		}
	}
}

// TestStylesProduceEquivalentFinalSchemas: the same schedule realized in
// both styles ends at logically equivalent schemas.
func TestStylesProduceEquivalentFinalSchemas(t *testing.T) {
	s, err := generateVerified(rand.New(rand.NewSource(8)), genRegularEarly, BornM0,
		core.RegularlyCurated, false, scheme)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2014, 5, 1, 0, 0, 0, 0, time.UTC)
	// Same op sequence requires the same rng stream per realization.
	dump, err := RealizeStyled(s, "d", start, rand.New(rand.NewSource(99)), FullDump)
	if err != nil {
		t.Fatal(err)
	}
	mig, err := RealizeStyled(s, "m", start, rand.New(rand.NewSource(99)), MigrationScript)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := history.FromRepo(dump)
	if err != nil {
		t.Fatal(err)
	}
	hm, err := history.FromRepo(mig)
	if err != nil {
		t.Fatal(err)
	}
	a, b := hd.FinalSchema(), hm.FinalSchema()
	if !schema.Equivalent(a, b) {
		t.Fatalf("final schemas differ:\n%s\nvs\n%s", a, b)
	}
}

// TestEverySpecRowGenerates: each row of the paper's spec table can
// produce a verified schedule on its own.
func TestEverySpecRowGenerates(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i, sp := range paperSpecs() {
		s, err := generateVerified(rng, sp.gen, sp.bucket, sp.pattern, sp.exc, scheme)
		if err != nil {
			t.Fatalf("spec %d (%v/%v exc=%v): %v", i, sp.pattern, sp.bucket, sp.exc, err)
		}
		if s.PUP <= 12 {
			t.Errorf("spec %d: PUP %d", i, s.PUP)
		}
	}
}
