package metrics

import (
	"math"
	"math/rand"
	"testing"

	"schemaevo/internal/history"
)

// hist builds a synthetic history with the given monthly schema heartbeat.
func hist(monthly []int) *history.History {
	return &history.History{
		Project:       "test",
		SchemaMonthly: monthly,
		SourceMonthly: make([]int, len(monthly)),
	}
}

func TestFlatlinerShape(t *testing.T) {
	// All change in month 0, 24-month project.
	monthly := make([]int, 24)
	monthly[0] = 10
	m := Compute(hist(monthly))
	if !m.HasSchema {
		t.Fatal("schema not detected")
	}
	if m.BirthMonth != 0 || m.BirthPct != 0 {
		t.Errorf("birth: %d %f", m.BirthMonth, m.BirthPct)
	}
	if m.BirthVolumePct != 1.0 {
		t.Errorf("birth volume = %f", m.BirthVolumePct)
	}
	if m.TopBandMonth != 0 || m.TopBandPct != 0 {
		t.Errorf("top band: %d %f", m.TopBandMonth, m.TopBandPct)
	}
	if !m.HasVault {
		t.Error("flatliner must have a vault")
	}
	if m.ActiveGrowthMonths != 0 || m.IntervalBirthToTopPct != 0 {
		t.Errorf("growth: %d %f", m.ActiveGrowthMonths, m.IntervalBirthToTopPct)
	}
	if m.IntervalTopToEndPct != 1.0 {
		t.Errorf("tail = %f", m.IntervalTopToEndPct)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMidLifeSigmoidShape(t *testing.T) {
	// 21 months; all change in month 10 (normalized 0.5).
	monthly := make([]int, 21)
	monthly[10] = 40
	m := Compute(hist(monthly))
	if math.Abs(m.BirthPct-0.5) > 1e-9 {
		t.Errorf("birth pct = %f", m.BirthPct)
	}
	if m.TopBandMonth != 10 {
		t.Errorf("top band month = %d", m.TopBandMonth)
	}
	if !m.HasVault {
		t.Error("single-shot change must be a vault")
	}
	if math.Abs(m.IntervalTopToEndPct-0.5) > 1e-9 {
		t.Errorf("tail = %f", m.IntervalTopToEndPct)
	}
}

func TestRegularCurationShape(t *testing.T) {
	// 21 months, change every other month from 0 to 20: 1+10 active points.
	monthly := make([]int, 21)
	for i := 0; i <= 20; i += 2 {
		monthly[i] = 5
	}
	m := Compute(hist(monthly))
	if m.BirthMonth != 0 {
		t.Errorf("birth = %d", m.BirthMonth)
	}
	// total 55; 90% at cumulative 49.5 → month 18 (cum 50).
	if m.TopBandMonth != 18 {
		t.Errorf("top band = %d", m.TopBandMonth)
	}
	if m.HasVault {
		t.Error("spread change should not be a vault")
	}
	// Active months strictly between 0 and 18: months 2..16 even = 8.
	if m.ActiveGrowthMonths != 8 {
		t.Errorf("active growth months = %d", m.ActiveGrowthMonths)
	}
	if m.ActivePctGrowth <= 0.4 {
		t.Errorf("active pct growth = %f", m.ActivePctGrowth)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNoSchema(t *testing.T) {
	m := Compute(hist(make([]int, 15)))
	if m.HasSchema {
		t.Error("no activity should mean no schema")
	}
	if m.BirthMonth != -1 || m.TopBandMonth != -1 {
		t.Errorf("sentinels: %d %d", m.BirthMonth, m.TopBandMonth)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPctOfPUP(t *testing.T) {
	if PctOfPUP(0, 1) != 0 || PctOfPUP(0, 13) != 0 {
		t.Error("month 0 must map to 0")
	}
	if PctOfPUP(12, 13) != 1 {
		t.Error("last month must map to 1")
	}
	if got := PctOfPUP(6, 13); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("mid month = %f", got)
	}
}

func TestResample(t *testing.T) {
	cum := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	v := Resample(cum, 20)
	if len(v) != 20 {
		t.Fatalf("len = %d", len(v))
	}
	if v[0] != 0.1 {
		t.Errorf("v[0] = %f", v[0])
	}
	if v[19] < 0.9 {
		t.Errorf("v[19] = %f", v[19])
	}
	for i := 1; i < 20; i++ {
		if v[i] < v[i-1] {
			t.Errorf("resample not monotone at %d: %v", i, v)
		}
	}
	empty := Resample(nil, 20)
	for _, x := range empty {
		if x != 0 {
			t.Error("empty series must resample to zeros")
		}
	}
}

func TestVaultBoundary(t *testing.T) {
	// 101 months: birth at 0, top reached at month 9 → interval 0.09 < 0.10: vault.
	monthly := make([]int, 101)
	monthly[0] = 10
	monthly[9] = 90
	m := Compute(hist(monthly))
	if !m.HasVault {
		t.Errorf("interval %f should be a vault", m.IntervalBirthToTopPct)
	}
	// Top at month 11 → interval 0.11 ≥ 0.10: no vault.
	monthly2 := make([]int, 101)
	monthly2[0] = 10
	monthly2[11] = 90
	m2 := Compute(hist(monthly2))
	if m2.HasVault {
		t.Errorf("interval %f should not be a vault", m2.IntervalBirthToTopPct)
	}
}

func TestTopBandNeedsNinetyPercent(t *testing.T) {
	// 89% at birth, final 11% at the end: top band only at the last month.
	monthly := make([]int, 10)
	monthly[0] = 89
	monthly[9] = 11
	m := Compute(hist(monthly))
	if m.TopBandMonth != 9 {
		t.Errorf("top band = %d, want 9", m.TopBandMonth)
	}
	// Exactly 90% at birth counts.
	monthly2 := make([]int, 10)
	monthly2[0] = 90
	monthly2[9] = 10
	m2 := Compute(hist(monthly2))
	if m2.TopBandMonth != 0 {
		t.Errorf("top band = %d, want 0", m2.TopBandMonth)
	}
}

func TestActiveGrowthExcludesEndpoints(t *testing.T) {
	monthly := make([]int, 30)
	monthly[5] = 10  // birth
	monthly[10] = 10 // in growth
	monthly[15] = 10 // in growth
	monthly[20] = 70 // crosses top band
	m := Compute(hist(monthly))
	if m.TopBandMonth != 20 {
		t.Fatalf("top band = %d", m.TopBandMonth)
	}
	if m.ActiveGrowthMonths != 2 {
		t.Errorf("active growth = %d, want 2 (endpoints excluded)", m.ActiveGrowthMonths)
	}
	if want := 2.0 / 14.0; math.Abs(m.ActivePctGrowth-want) > 1e-9 {
		t.Errorf("active pct growth = %f, want %f", m.ActivePctGrowth, want)
	}
	if want := 2.0 / 30.0; math.Abs(m.ActivePctPUP-want) > 1e-9 {
		t.Errorf("active pct PUP = %f, want %f", m.ActivePctPUP, want)
	}
}

// TestComputeInvariantsRandom is a property test over random heartbeats.
func TestComputeInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		months := rng.Intn(120) + 1
		monthly := make([]int, months)
		events := rng.Intn(10)
		for e := 0; e < events; e++ {
			monthly[rng.Intn(months)] += rng.Intn(50) + 1
		}
		m := Compute(hist(monthly))
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d (monthly %v): %v", trial, monthly, err)
		}
		if m.HasSchema {
			if m.Vector[0] < 0 || m.Vector[VectorLen-1] > 1+1e-9 {
				t.Fatalf("trial %d: vector out of range %v", trial, m.Vector)
			}
			for i := 1; i < VectorLen; i++ {
				if m.Vector[i] < m.Vector[i-1]-1e-12 {
					t.Fatalf("trial %d: vector not monotone", trial)
				}
			}
		}
	}
}

func TestCountVaults(t *testing.T) {
	// One vault: everything at month 0 of 20.
	single := history.Cumulative(append([]int{100}, make([]int, 19)...))
	if got := CountVaults(single, DefaultVaultGain); got != 1 {
		t.Errorf("single burst vaults = %d", got)
	}
	// Two vaults: half at month 0, half at month 30 of a 60-month life.
	monthly := make([]int, 60)
	monthly[0], monthly[30] = 50, 50
	if got := CountVaults(history.Cumulative(monthly), DefaultVaultGain); got != 2 {
		t.Errorf("double burst vaults = %d", got)
	}
	// No vault: perfectly gradual growth over 60 months (each 10%-of-life
	// window gains ~10% < 25%).
	gradual := make([]int, 60)
	for i := range gradual {
		gradual[i] = 1
	}
	if got := CountVaults(history.Cumulative(gradual), DefaultVaultGain); got != 0 {
		t.Errorf("gradual growth vaults = %d", got)
	}
	// Empty line.
	if got := CountVaults(nil, DefaultVaultGain); got != 0 {
		t.Errorf("empty vaults = %d", got)
	}
	// Zero-activity line.
	if got := CountVaults(make([]float64, 30), DefaultVaultGain); got != 0 {
		t.Errorf("flat-zero vaults = %d", got)
	}
}

func TestCountVaultsShortProject(t *testing.T) {
	// A 13-month project with one burst: window rounds down to ~2 months.
	monthly := make([]int, 13)
	monthly[5] = 10
	if got := CountVaults(history.Cumulative(monthly), DefaultVaultGain); got != 1 {
		t.Errorf("vaults = %d", got)
	}
}

func TestGiniConcentration(t *testing.T) {
	// Single burst in a long life: maximal concentration.
	burst := make([]int, 50)
	burst[10] = 100
	if g := GiniConcentration(burst); g < 0.95 {
		t.Errorf("single burst gini = %v", g)
	}
	// Perfectly even spread: zero concentration.
	even := make([]int, 50)
	for i := range even {
		even[i] = 3
	}
	if g := GiniConcentration(even); math.Abs(g) > 1e-9 {
		t.Errorf("even spread gini = %v", g)
	}
	// Half the months active: intermediate.
	half := make([]int, 40)
	for i := 0; i < 20; i++ {
		half[i] = 5
	}
	g := GiniConcentration(half)
	if g < 0.4 || g > 0.6 {
		t.Errorf("half-active gini = %v", g)
	}
	if GiniConcentration(nil) != 0 || GiniConcentration(make([]int, 5)) != 0 {
		t.Error("degenerate inputs must be 0")
	}
	// Scale invariance.
	double := make([]int, len(burst))
	for i, v := range burst {
		double[i] = v * 2
	}
	if math.Abs(GiniConcentration(burst)-GiniConcentration(double)) > 1e-12 {
		t.Error("gini not scale invariant")
	}
}
