package metrics

import "sort"

// CountVaults counts the vaults of a cumulative line: maximal climb
// episodes that gain at least minGain of the total activity within a
// window of at most VaultThreshold of the project's life. The §3.4
// statistic "58% of the projects had a single vault" is CountVaults == 1
// with the paper's 25% gain threshold.
func CountVaults(cum []float64, minGain float64) int {
	n := len(cum)
	if n == 0 {
		return 0
	}
	window := int(VaultThreshold*float64(n-1)) + 1
	if window < 1 {
		window = 1
	}
	vaults := 0
	i := 0
	for i < n {
		// Find the largest gain achievable from month i within the window.
		end := i + window
		if end > n-1 {
			end = n - 1
		}
		var base float64
		if i > 0 {
			base = cum[i-1]
		}
		gain := cum[end] - base
		if gain >= minGain {
			vaults++
			// Skip past this climb: advance to the first month after the
			// window where the line is flat again.
			i = end + 1
			continue
		}
		i++
	}
	return vaults
}

// DefaultVaultGain is the minimum share of total activity a climb must
// carry to count as a vault (a quarter of all activity).
const DefaultVaultGain = 0.25

// GiniConcentration measures how concentrated a monthly heartbeat is: 0
// means change spread evenly over every month, values near 1 mean change
// packed into very few months. It quantifies the paper's observation that
// curators "prefer clustered groups of schema changes rather than
// constant incremental maintenance".
func GiniConcentration(monthly []int) float64 {
	n := len(monthly)
	if n == 0 {
		return 0
	}
	total := 0
	for _, v := range monthly {
		total += v
	}
	if total == 0 {
		return 0
	}
	// Gini = (2 * sum(i * x_sorted_i) / (n * total)) - (n + 1) / n,
	// with 1-based ranks over ascending values.
	sorted := append([]int(nil), monthly...)
	sort.Ints(sorted)
	weighted := 0.0
	for i, v := range sorted {
		weighted += float64(i+1) * float64(v)
	}
	return 2*weighted/(float64(n)*float64(total)) - float64(n+1)/float64(n)
}
