// Package metrics computes the time-related measures of schema evolution
// defined in §3.2 of the paper: the Project Update Period, schema birth
// (point and volume), top-band attainment, the growth and tail intervals,
// vault detection and the active-growth-months measures, plus the 20-point
// resampled cumulative vector used for cohesion analysis (§5.2).
package metrics

import (
	"fmt"
	"math"

	"schemaevo/internal/history"
)

// TopBandThreshold is the fraction of total activity whose attainment the
// paper calls "reaching the top band" (90%).
const TopBandThreshold = 0.9

// VaultThreshold is the maximum birth-to-top interval (as a fraction of
// the PUP) for the transition to count as a vault (10%).
const VaultThreshold = 0.10

// VectorLen is the number of samples of the resampled cumulative line
// (one per 5% of normalized time: 0%, 5%, ..., 95%).
const VectorLen = 20

// Measures holds every time-related measure for one project.
type Measures struct {
	// Project is the project name, carried for reporting.
	Project string

	// PUPMonths is the Project Update Period in months (granule of the
	// study), from the originating commit to the last commit, inclusive.
	PUPMonths int

	// HasSchema reports whether any schema activity was ever observed.
	// When false, every other schema measure is zero and meaningless.
	HasSchema bool

	// BirthMonth is the month index (0-based, 0 = V_p^0's month) of the
	// first schema activity.
	BirthMonth int
	// BirthPct is BirthMonth on normalized [0,1] project time.
	BirthPct float64
	// BirthVolumePct is the fraction of total schema activity that the
	// birth month carries.
	BirthVolumePct float64

	// TopBandMonth is the month index at which cumulative activity first
	// reaches TopBandThreshold.
	TopBandMonth int
	// TopBandPct is TopBandMonth on normalized time.
	TopBandPct float64

	// IntervalBirthToTopPct is the normalized growth interval
	// (TopBandPct - BirthPct).
	IntervalBirthToTopPct float64
	// IntervalTopToEndPct is the normalized tail (1 - TopBandPct).
	IntervalTopToEndPct float64

	// HasVault reports a birth-to-top transition shorter than
	// VaultThreshold of the project's life.
	HasVault bool

	// ActiveGrowthMonths counts months with schema activity strictly
	// between BirthMonth and TopBandMonth (the paper's "proper interval").
	ActiveGrowthMonths int
	// ActivePctGrowth normalizes ActiveGrowthMonths by the length of the
	// proper growth interval; zero when the interval is empty.
	ActivePctGrowth float64
	// ActivePctPUP normalizes ActiveGrowthMonths by the PUP.
	ActivePctPUP float64

	// TotalActivity is the total number of affected attributes, and
	// Expansion/Maintenance its §6.3 split.
	TotalActivity int
	Expansion     int
	Maintenance   int

	// TablesAtBirth and AttrsAtBirth size the schema at its first version.
	TablesAtBirth int
	AttrsAtBirth  int
	// TablesAtEnd and AttrsAtEnd size the final schema.
	TablesAtEnd int
	AttrsAtEnd  int

	// Vector is the cumulative schema line resampled at VectorLen points
	// of normalized time (0%, 5%, ..., 95%).
	Vector []float64
}

// PctOfPUP maps a month index to normalized [0,1] project time. A
// single-month project maps every index to 0.
func PctOfPUP(month, pupMonths int) float64 {
	if pupMonths <= 1 {
		return 0
	}
	return float64(month) / float64(pupMonths-1)
}

// Compute derives all measures from a history.
func Compute(h *history.History) Measures {
	m := Measures{
		Project:       h.Project,
		PUPMonths:     h.Months(),
		TotalActivity: h.TotalActivity(),
		Expansion:     h.ExpansionTotal,
		Maintenance:   h.MaintenanceTotal,
		BirthMonth:    -1,
		TopBandMonth:  -1,
	}
	if len(h.Versions) > 0 {
		first := h.Versions[0]
		m.TablesAtBirth = first.Schema.TableCount()
		m.AttrsAtBirth = first.Schema.AttributeCount()
		last := h.FinalSchema()
		m.TablesAtEnd = last.TableCount()
		m.AttrsAtEnd = last.AttributeCount()
	}
	cum := h.SchemaCumulative()
	m.Vector = Resample(cum, VectorLen)
	if m.TotalActivity == 0 {
		return m
	}
	m.HasSchema = true

	for i, v := range h.SchemaMonthly {
		if v > 0 {
			m.BirthMonth = i
			m.BirthVolumePct = float64(v) / float64(m.TotalActivity)
			break
		}
	}
	for i, c := range cum {
		if c >= TopBandThreshold-1e-12 {
			m.TopBandMonth = i
			break
		}
	}
	m.BirthPct = PctOfPUP(m.BirthMonth, m.PUPMonths)
	m.TopBandPct = PctOfPUP(m.TopBandMonth, m.PUPMonths)
	m.IntervalBirthToTopPct = m.TopBandPct - m.BirthPct
	m.IntervalTopToEndPct = 1 - m.TopBandPct
	m.HasVault = m.IntervalBirthToTopPct < VaultThreshold

	for i := m.BirthMonth + 1; i < m.TopBandMonth; i++ {
		if h.SchemaMonthly[i] > 0 {
			m.ActiveGrowthMonths++
		}
	}
	if growth := m.TopBandMonth - m.BirthMonth - 1; growth > 0 {
		m.ActivePctGrowth = float64(m.ActiveGrowthMonths) / float64(growth)
	}
	if m.PUPMonths > 0 {
		m.ActivePctPUP = float64(m.ActiveGrowthMonths) / float64(m.PUPMonths)
	}
	return m
}

// Resample samples a cumulative monthly series at n evenly spaced points
// of normalized time (0, 1/n, 2/n, ... (n-1)/n), by nearest month. An
// empty series yields n zeros.
func Resample(cum []float64, n int) []float64 {
	out := make([]float64, n)
	if len(cum) == 0 {
		return out
	}
	last := len(cum) - 1
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n)
		idx := int(math.Round(f * float64(last)))
		out[i] = cum[idx]
	}
	return out
}

// Validate checks internal consistency of the measures; it is used by
// property tests and as a guard in the corpus pipeline.
func (m *Measures) Validate() error {
	if !m.HasSchema {
		if m.TotalActivity != 0 {
			return fmt.Errorf("metrics: %s: no schema but activity %d", m.Project, m.TotalActivity)
		}
		return nil
	}
	if m.BirthMonth < 0 || m.BirthMonth >= m.PUPMonths {
		return fmt.Errorf("metrics: %s: birth month %d outside PUP %d", m.Project, m.BirthMonth, m.PUPMonths)
	}
	if m.TopBandMonth < m.BirthMonth {
		return fmt.Errorf("metrics: %s: top band %d before birth %d", m.Project, m.TopBandMonth, m.BirthMonth)
	}
	if m.BirthVolumePct <= 0 || m.BirthVolumePct > 1+1e-9 {
		return fmt.Errorf("metrics: %s: birth volume %f out of range", m.Project, m.BirthVolumePct)
	}
	if m.IntervalBirthToTopPct < -1e-9 || m.IntervalTopToEndPct < -1e-9 {
		return fmt.Errorf("metrics: %s: negative interval", m.Project)
	}
	if s := m.BirthPct + m.IntervalBirthToTopPct + m.IntervalTopToEndPct; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("metrics: %s: intervals sum to %f", m.Project, s)
	}
	return nil
}
