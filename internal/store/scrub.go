package store

// The background scrubber is the store's self-healing loop. Read-time
// verification (Get/Source) only finds corruption when a record is
// demanded — a latently rotten record of a cold project sits undetected
// until the read that needed it. The scrubber walks every shard ahead of
// demand: it CRC-verifies each live record at a bounded pace, quarantines
// damage the moment it exists rather than the moment it hurts, and hands
// entries that lost their result to a repair callback so they return to
// service without operator action. A pass also gives each shard a
// write-independent compaction opportunity (quarantining grows garbage,
// and an idle store would otherwise never reach a compaction trigger) and
// runs the disk-budget watchdog that degrades the store to read-only
// before ENOSPC can tear a write.
//
// Fault sites: "store.scrub" (KindErr skips an entry's verification for
// one pass; KindDelay stalls it; KindCorrupt — keyed id@seq — makes the
// scrubber treat the result record as latently corrupt, the deterministic
// chaos hook the self-healing tests drive), plus "store.slowdisk"
// (KindDelay, a slow device on the scrub read path).

import (
	"context"
	"fmt"
	"sort"
	"time"

	"schemaevo/internal/faultinject"
)

// ScrubConfig parameterizes a scrub pass (ScrubOnce) or the background
// loop (StartScrubber).
type ScrubConfig struct {
	// Interval is the pause between background passes. <= 0 selects 30s.
	Interval time.Duration
	// Pace is the pause between per-record verifications, rate-limiting
	// the scrubber's read load against foreground traffic. < 0 disables
	// pacing; 0 selects 500µs.
	Pace time.Duration
	// Repair, when set, is invoked — outside all store locks, after the
	// verification walk — for each live entry whose source snapshot is
	// readable but whose result is not (quarantined during this pass or
	// any time before). It should re-analyze the project and write the
	// result back with PutResult. Repairs are skipped in read-only mode.
	Repair func(ctx context.Context, id string) error
	// DiskFloorBytes enables the disk-budget watchdog: when the segment
	// directory's filesystem has fewer free bytes, the store flips to
	// read-only; it becomes writable again once free space recovers to
	// twice the floor (hysteresis, so a store hovering at the floor does
	// not flap). <= 0 disables.
	DiskFloorBytes int64
	// FreeSpace overrides the free-space probe for tests; nil selects the
	// platform's statfs (watchdog disabled where unsupported).
	FreeSpace func(dir string) (int64, error)
}

// ScrubReport summarizes one pass.
type ScrubReport struct {
	// Verified counts records read clean; Corrupt counts records found
	// damaged and quarantined by this pass.
	Verified int
	Corrupt  int
	// Repaired counts entries whose result is readable again after the
	// repair callback; RepairFailed those still missing one (callback
	// error, or no callback configured while repairs were needed).
	Repaired     int
	RepairFailed int
	// FreeBytes is the watchdog's last probe, -1 when disabled/unknown.
	FreeBytes int64
	// ReadOnly is the store's mode as the pass ended.
	ReadOnly bool
}

// ScrubOnce runs one full scrub pass synchronously: watchdog, per-shard
// verification walk, compaction opportunity, then repairs. It is the
// deterministic entry point tests (and the server's manual trigger) use;
// StartScrubber runs the same pass on a timer.
func (s *Store) ScrubOnce(ctx context.Context, cfg ScrubConfig) ScrubReport {
	rep := ScrubReport{FreeBytes: -1}
	s.checkDiskBudget(cfg, &rep)

	pace := cfg.Pace
	if pace == 0 {
		pace = 500 * time.Microsecond
	}
	var repairIDs []string
	for _, sh := range s.shards {
		if ctx.Err() != nil {
			break
		}
		sh.mu.Lock()
		disk := sh.file != nil
		ids := make([]string, 0, len(sh.byID))
		for id := range sh.byID {
			ids = append(ids, id)
		}
		sh.mu.Unlock()
		if !disk {
			continue
		}
		sort.Strings(ids)
		for _, id := range ids {
			if ctx.Err() != nil {
				break
			}
			if s.verifyEntry(ctx, sh, id, &rep) {
				repairIDs = append(repairIDs, id)
			}
			if pace > 0 {
				select {
				case <-ctx.Done():
				case <-time.After(pace):
				}
			}
		}
		sh.mu.Lock()
		s.maybeCompactLocked(sh)
		sh.mu.Unlock()
	}

	// Repairs run outside every lock: the callback re-enters the store
	// (Source, PutResult) and typically a whole analysis pipeline. In
	// read-only mode the write-back cannot land, so don't burn the work.
	for _, id := range repairIDs {
		if ctx.Err() != nil {
			break
		}
		if s.ReadOnly() {
			rep.RepairFailed++
			continue
		}
		// Cheapest repair first: only the durable record rotted — when the
		// hot tier still holds the result, rewriting it restores durability
		// without re-analysis. Otherwise re-derive it via the callback.
		if data, ok := s.hot.get(id); ok {
			if err := s.PutResult(id, data); err == nil && s.resultReadable(id) {
				rep.Repaired++
				s.repairs.Add(1)
				s.tel.StoreRepair()
				continue
			}
		}
		if cfg.Repair == nil {
			rep.RepairFailed++
			continue
		}
		if err := cfg.Repair(ctx, id); err != nil || !s.resultReadable(id) {
			rep.RepairFailed++
			continue
		}
		rep.Repaired++
		s.repairs.Add(1)
		s.tel.StoreRepair()
	}

	s.scrubPasses.Add(1)
	s.tel.StoreScrubPass()
	rep.ReadOnly = s.ReadOnly()
	return rep
}

// verifyEntry CRC-checks one live entry's records ahead of demand,
// quarantining any damage, and reports whether the entry needs repair
// (readable source, no readable result).
func (s *Store) verifyEntry(ctx context.Context, sh *shard, id string, rep *ScrubReport) (needRepair bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m := sh.byID[id]
	if m == nil || sh.file == nil {
		return false // deleted or superseded since the snapshot
	}
	switch s.fault.At("store.scrub", id) {
	case faultinject.KindErr:
		// A transient read error: skip this entry for one pass rather
		// than quarantining records that may be perfectly healthy.
		return false
	case faultinject.KindDelay:
		s.fault.Sleep(ctx)
	}
	if s.fault.At("store.slowdisk", "scrub:"+id) == faultinject.KindDelay {
		s.fault.Sleep(ctx)
	}
	if m.src.ok() {
		s.tel.StoreScrubRecord()
		if _, err := sh.readRecordLocked(m.src); err != nil {
			s.quarantineLocked(sh, &m.src)
			rep.Corrupt++
		} else {
			rep.Verified++
		}
	}
	if m.res.ok() {
		s.tel.StoreScrubRecord()
		_, err := sh.readRecordLocked(m.res)
		// Injected latent corruption, keyed by id@seq: a repaired record
		// carries a new sequence, so the same entry re-rolls instead of
		// faulting forever.
		if err == nil && s.fault.At("store.scrub", fmt.Sprintf("%s@%d", id, m.res.seq)) == faultinject.KindCorrupt {
			err = &faultinject.Error{Site: "store.scrub", Key: id}
		}
		if err != nil {
			s.quarantineLocked(sh, &m.res)
			rep.Corrupt++
		} else {
			rep.Verified++
		}
	}
	return m.src.ok() && !m.res.ok()
}

// resultReadable reports whether id currently has a durable readable
// result — the post-repair check.
func (s *Store) resultReadable(id string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m := sh.byID[id]
	if m == nil {
		return false
	}
	if sh.file == nil {
		_, ok := s.hot.get(id)
		return ok
	}
	return m.res.ok()
}

// checkDiskBudget runs the watchdog: degrade to read-only below the
// floor, recover at twice the floor.
func (s *Store) checkDiskBudget(cfg ScrubConfig, rep *ScrubReport) {
	if cfg.DiskFloorBytes <= 0 || s.dir == "" {
		return
	}
	probe := cfg.FreeSpace
	if probe == nil {
		probe = freeBytes
	}
	free, err := probe(s.dir)
	if err != nil {
		return
	}
	rep.FreeBytes = free
	s.tel.SetGauge("store.free_bytes", free)
	s.romu.Lock()
	switch {
	case free < cfg.DiskFloorBytes:
		s.enterReadOnlyLocked(roDisk)
	case free >= 2*cfg.DiskFloorBytes:
		s.clearReadOnlyLocked(roDisk)
	}
	s.romu.Unlock()
}

// StartScrubber launches the background scrub loop: one ScrubOnce pass
// every cfg.Interval until StopScrubber or Close. A second call while the
// loop is running is a no-op.
func (s *Store) StartScrubber(cfg ScrubConfig) {
	s.smu.Lock()
	defer s.smu.Unlock()
	if s.scrubStop != nil {
		return
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = 30 * time.Second
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	s.scrubStop, s.scrubDone = stop, done
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-stop
		cancel()
	}()
	go func() {
		defer close(done)
		t := time.NewTimer(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			s.ScrubOnce(ctx, cfg)
			t.Reset(interval)
		}
	}()
}

// StopScrubber stops the background loop and waits for any in-flight
// pass (including its repairs) to finish. Safe to call when no loop is
// running. Close calls it before releasing the segment files, so a pass
// never races a closed handle.
func (s *Store) StopScrubber() {
	s.smu.Lock()
	stop, done := s.scrubStop, s.scrubDone
	s.scrubStop, s.scrubDone = nil, nil
	s.smu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}
