package store

import (
	"sync"
	"testing"
)

// commitLog records OnCommit firings together with what the store
// answered for the fired ID at notification time — the hook's contract
// is "the mutation is fully visible before the hook runs", so a
// cache invalidator keyed on it can never observe pre-mutation state
// afterwards.
type commitLog struct {
	mu    sync.Mutex
	calls []string
	seqs  []uint64
}

func (l *commitLog) record(id string, seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.calls = append(l.calls, id)
	l.seqs = append(l.seqs, seq)
}

// take drains the pending call list; the sequence history is kept for
// the whole run so monotonicity can be checked at the end.
func (l *commitLog) take() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := l.calls
	l.calls = nil
	return out
}

func wantCalls(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("OnCommit fired for %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("OnCommit fired for %v, want %v", got, want)
		}
	}
}

// TestOnCommitOrdering pins the hook protocol for every mutating entry
// point: fired after the mutation is visible, once per affected ID
// (including the superseded previous version on an overwrite), with a
// monotonically increasing sequence.
func TestOnCommitOrdering(t *testing.T) {
	var log commitLog
	s, err := Open(Config{Dir: t.TempDir(), Shards: 2, OnCommit: log.record})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Hook observes the committed put.
	var visible bool
	s.onCommit = func(id string, seq uint64) {
		if data, _, ok := s.Get(id); ok && string(data) == "result v1" {
			visible = true
		}
		log.record(id, seq)
	}
	if _, err := s.Put(Entry{ID: "p-v1", Name: "p", Fingerprint: "fp1", Source: []byte("src v1"), Result: []byte("result v1")}); err != nil {
		t.Fatal(err)
	}
	if !visible {
		t.Fatal("OnCommit fired before the put was readable")
	}
	s.onCommit = log.record
	wantCalls(t, log.take(), []string{"p-v1"})

	// Overwrite: the new ID first, then the superseded previous ID — a
	// subscriber invalidating per-ID caches drops both versions.
	if _, err := s.Put(Entry{ID: "p-v2", Name: "p", Fingerprint: "fp2", Source: []byte("src v2"), Result: []byte("result v2")}); err != nil {
		t.Fatal(err)
	}
	wantCalls(t, log.take(), []string{"p-v2", "p-v1"})

	// Same-ID re-put: no previous ID, a single firing.
	if _, err := s.Put(Entry{ID: "p-v2", Name: "p", Fingerprint: "fp2", Source: []byte("src v2"), Result: []byte("result v2b")}); err != nil {
		t.Fatal(err)
	}
	wantCalls(t, log.take(), []string{"p-v2"})

	// PutResult (re-analysis write-back) fires for the refreshed ID, and
	// the new result is visible from inside the hook.
	visible = false
	s.onCommit = func(id string, seq uint64) {
		if data, _, ok := s.Get(id); ok && string(data) == "result v2c" {
			visible = true
		}
		log.record(id, seq)
	}
	if err := s.PutResult("p-v2", []byte("result v2c")); err != nil {
		t.Fatal(err)
	}
	if !visible {
		t.Fatal("OnCommit fired before PutResult was readable")
	}
	s.onCommit = log.record
	wantCalls(t, log.take(), []string{"p-v2"})

	// Delete: fired after the entry is gone, so an invalidator can never
	// re-admit the deleted body afterwards.
	var gone bool
	s.onCommit = func(id string, seq uint64) {
		if _, _, ok := s.Get(id); !ok {
			if _, live := s.LatestID("p"); !live {
				gone = true
			}
		}
		log.record(id, seq)
	}
	if ok, err := s.Delete("p-v2"); err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	if !gone {
		t.Fatal("OnCommit fired before the delete was visible")
	}
	wantCalls(t, log.take(), []string{"p-v2"})

	// Sequences across the whole run are strictly increasing.
	s.onCommit = log.record
	if _, err := s.Put(Entry{ID: "q-v1", Name: "q", Fingerprint: "fq1", Source: []byte("s"), Result: []byte("r")}); err != nil {
		t.Fatal(err)
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	for i := 1; i < len(log.seqs); i++ {
		if log.seqs[i] < log.seqs[i-1] {
			t.Fatalf("OnCommit sequences regressed: %v", log.seqs)
		}
	}
}
