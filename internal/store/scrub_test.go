package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"schemaevo/internal/faultinject"
)

// flipResultByte injects real latent bit-rot: one body byte of id's
// result record is inverted on disk. The hot tier still holds the clean
// copy — exactly the situation read-time verification cannot see until
// eviction, and the scrubber exists to find.
func flipResultByte(t *testing.T, s *Store, id string) {
	t.Helper()
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m := sh.byID[id]
	if m == nil || !m.res.ok() {
		t.Fatalf("no live result record for %s", id)
	}
	buf := []byte{0}
	if _, err := sh.file.ReadAt(buf, m.res.bodyOff); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := sh.file.WriteAt(buf, m.res.bodyOff); err != nil {
		t.Fatal(err)
	}
}

// repairFromSource fabricates the server's repair callback at store
// level: read the (intact) source snapshot, "re-analyze" it by looking up
// the expected result, write it back.
func repairFromSource(s *Store, want map[string][]byte) func(context.Context, string) error {
	return func(_ context.Context, id string) error {
		if _, ok := s.Source(id); !ok {
			return fmt.Errorf("no readable source for %s", id)
		}
		return s.PutResult(id, want[id])
	}
}

func TestScrubDetectsAndRepairsBitRot(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n, rotted = 20, 7
	want := map[string][]byte{}
	for i := 0; i < n; i++ {
		e := entry(i, 1)
		mustPut(t, s, e)
		want[e.ID] = e.Result
	}
	for i := 0; i < rotted; i++ {
		flipResultByte(t, s, entry(i, 1).ID)
	}

	rep := s.ScrubOnce(context.Background(), ScrubConfig{
		Pace:   -1,
		Repair: repairFromSource(s, want),
	})
	if rep.Corrupt != rotted {
		t.Fatalf("scrub found %d corrupt records, want %d", rep.Corrupt, rotted)
	}
	// Every record was checked: n sources plus the n-rotted clean results.
	if wantV := 2*n - rotted; rep.Verified != wantV {
		t.Fatalf("scrub verified %d records, want %d", rep.Verified, wantV)
	}
	if rep.Repaired != rotted || rep.RepairFailed != 0 {
		t.Fatalf("repaired %d (failed %d), want %d repaired", rep.Repaired, rep.RepairFailed, rotted)
	}
	st := s.StatsSnapshot()
	if st.MissingResults != 0 {
		t.Fatalf("MissingResults = %d after repair, want 0", st.MissingResults)
	}
	if st.ScrubPasses != 1 || st.Repairs != int64(rotted) || st.Quarantined != int64(rotted) {
		t.Fatalf("stats = passes %d, repairs %d, quarantined %d", st.ScrubPasses, st.Repairs, st.Quarantined)
	}
	for id, res := range want {
		data, _, ok := s.Get(id)
		if !ok || !bytes.Equal(data, res) {
			t.Fatalf("Get(%s) after repair: ok=%v, wrong bytes", id, ok)
		}
	}

	// Supersede everything twice so garbage dominates live in every
	// shard (the tiny records stay under the default 1 MiB floor, so the
	// Puts themselves never compact), then verify a pass with a lowered
	// floor is the write-independent compaction trigger.
	for v := 2; v <= 3; v++ {
		for i := 0; i < n; i++ {
			e := entry(i, v)
			mustPut(t, s, e)
			want[e.ID] = e.Result
		}
	}
	s.compactMin = 1
	s.ScrubOnce(context.Background(), ScrubConfig{Pace: -1})
	if got := s.StatsSnapshot(); got.Compactions == 0 {
		t.Fatalf("scrub pass did not trigger compaction (garbage %d, live %d)", got.GarbageBytes, got.LiveBytes)
	}

	// And the healed store must reopen cleanly with every result durable.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Dir: s.dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.StatsSnapshot(); st.Entries != n || st.MissingResults != 0 {
		t.Fatalf("reopen: entries %d, missing %d", st.Entries, st.MissingResults)
	}
}

func TestScrubCorruptSourceIsQuarantinedNotRepaired(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := entry(0, 1)
	mustPut(t, s, e)

	sh := s.shardFor(e.ID)
	sh.mu.Lock()
	m := sh.byID[e.ID]
	buf := []byte{0}
	if _, err := sh.file.ReadAt(buf, m.src.bodyOff); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if _, err := sh.file.WriteAt(buf, m.src.bodyOff); err != nil {
		t.Fatal(err)
	}
	sh.mu.Unlock()

	called := false
	rep := s.ScrubOnce(context.Background(), ScrubConfig{
		Pace:   -1,
		Repair: func(context.Context, string) error { called = true; return nil },
	})
	if rep.Corrupt != 1 || rep.Verified != 1 {
		t.Fatalf("corrupt %d / verified %d, want 1/1", rep.Corrupt, rep.Verified)
	}
	if called {
		t.Fatal("repair callback ran for an entry whose result is intact")
	}
	// The result still serves even though the source is gone.
	wantGet(t, s, e.ID, "hot", e.Result)
}

func TestScrubWithoutRepairCallbackCountsFailures(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := entry(0, 1)
	mustPut(t, s, e)
	flipResultByte(t, s, e.ID)
	// Evict the hot copy too: with it present the scrubber would repair
	// from memory without any callback (see TestScrubRepairsFromHotTier);
	// this test pins the path where no repair source remains.
	s.hot.remove(e.ID)

	rep := s.ScrubOnce(context.Background(), ScrubConfig{Pace: -1})
	if rep.Corrupt != 1 || rep.Repaired != 0 || rep.RepairFailed != 1 {
		t.Fatalf("report = %+v, want 1 corrupt, 1 repair-failed", rep)
	}
	if st := s.StatsSnapshot(); st.MissingResults != 1 {
		t.Fatalf("MissingResults = %d, want 1", st.MissingResults)
	}
}

// TestScrubRepairsFromHotTier pins the cheapest repair: when only the
// durable record rotted and the hot tier still holds the result, the
// scrubber restores durability by rewriting it — no callback, no
// re-analysis.
func TestScrubRepairsFromHotTier(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := entry(0, 1)
	mustPut(t, s, e)
	flipResultByte(t, s, e.ID)

	rep := s.ScrubOnce(context.Background(), ScrubConfig{Pace: -1})
	if rep.Corrupt != 1 || rep.Repaired != 1 || rep.RepairFailed != 0 {
		t.Fatalf("report = %+v, want 1 corrupt repaired from the hot tier", rep)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The rewrite must be durable: a cold reopen serves the result from
	// disk.
	s2, err := Open(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	wantGet(t, s2, e.ID, "disk", e.Result)
}

func TestScrubFaultInjectedLatentCorruption(t *testing.T) {
	fi := faultinject.New(faultinject.Config{
		Seed: 11, Rate: 1,
		Sites: []string{"store.scrub"},
		Kinds: []faultinject.Kind{faultinject.KindCorrupt},
	})
	s, err := Open(Config{Dir: t.TempDir(), Shards: 4, Fault: fi})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 10
	want := map[string][]byte{}
	for i := 0; i < n; i++ {
		e := entry(i, 1)
		mustPut(t, s, e)
		want[e.ID] = e.Result
	}
	rep := s.ScrubOnce(context.Background(), ScrubConfig{
		Pace:   -1,
		Repair: repairFromSource(s, want),
	})
	// Rate 1 + KindCorrupt: every result record is treated as latently
	// corrupt, and every one must come back without operator action.
	if rep.Corrupt != n || rep.Repaired != n || rep.RepairFailed != 0 {
		t.Fatalf("report = %+v, want %d corrupt and %d repaired", rep, n, n)
	}
	if st := s.StatsSnapshot(); st.MissingResults != 0 {
		t.Fatalf("MissingResults = %d after repair, want 0", st.MissingResults)
	}
	for id, res := range want {
		data, _, ok := s.Get(id)
		if !ok || !bytes.Equal(data, res) {
			t.Fatalf("Get(%s) after repair: ok=%v, wrong bytes", id, ok)
		}
	}
}

func TestReadOnlyModeGatesWrites(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	e := entry(0, 1)
	mustPut(t, s, e)

	s.SetReadOnly(true)
	if _, err := s.Put(entry(1, 1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put in read-only mode: %v, want ErrReadOnly", err)
	}
	if err := s.PutResult(e.ID, []byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("PutResult in read-only mode: %v, want ErrReadOnly", err)
	}
	if _, err := s.Delete(e.ID); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Delete in read-only mode: %v, want ErrReadOnly", err)
	}
	wantGet(t, s, e.ID, "hot", e.Result)
	if _, ok := s.Source(e.ID); !ok {
		t.Fatal("Source must keep serving in read-only mode")
	}
	if st := s.StatsSnapshot(); !st.ReadOnly || st.ReadOnlyEvents != 1 {
		t.Fatalf("stats = readOnly %v, events %d", st.ReadOnly, st.ReadOnlyEvents)
	}

	s.SetReadOnly(false)
	if _, err := s.Put(entry(1, 1)); err != nil {
		t.Fatalf("Put after clearing read-only: %v", err)
	}
}

func TestDiskFullAppendDegradesToReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	const acked = 5
	for i := 0; i < acked; i++ {
		mustPut(t, s, entry(i, 1))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen on a "full disk": every segment append hits injected ENOSPC.
	fi := faultinject.New(faultinject.Config{
		Seed: 3, Rate: 1,
		Sites: []string{"store.diskfull"},
		Kinds: []faultinject.Kind{faultinject.KindErr},
	})
	s, err = Open(Config{Dir: dir, Shards: 2, Fault: fi})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	_, err = s.Put(entry(acked, 1))
	if err == nil || !IsDiskFull(err) {
		t.Fatalf("Put on full disk: %v, want ENOSPC", err)
	}
	if !s.ReadOnly() {
		t.Fatal("store must degrade to read-only after ENOSPC")
	}
	if _, err := s.Put(entry(acked+1, 1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put after degrade: %v, want ErrReadOnly", err)
	}
	// Every acked write still serves (hot tier is cold after reopen, so
	// these are true disk reads).
	for i := 0; i < acked; i++ {
		e := entry(i, 1)
		wantGet(t, s, e.ID, "disk", e.Result)
	}
	if st := s.StatsSnapshot(); st.DiskFullEvents == 0 || st.ReadOnlyEvents != 1 {
		t.Fatalf("stats = diskFull %d, roEvents %d", st.DiskFullEvents, st.ReadOnlyEvents)
	}

	// A clean reopen (space freed, say) still has every acked write.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != acked {
		t.Fatalf("reopen: %d entries, want %d", got, acked)
	}
	for i := 0; i < acked; i++ {
		e := entry(i, 1)
		wantGet(t, s2, e.ID, "disk", e.Result)
	}
}

func TestDiskFullCompactionDegradesToReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 1, CompactMinBytes: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Supersede every entry so more than half the shard is garbage.
	const n = 8
	for i := 0; i < n; i++ {
		mustPut(t, s, entry(i, 1))
	}
	for i := 0; i < n; i++ {
		mustPut(t, s, entry(i, 2))
	}

	s.fault = faultinject.New(faultinject.Config{
		Seed: 3, Rate: 1,
		Sites: []string{"store.diskfull"},
		Kinds: []faultinject.Kind{faultinject.KindErr},
	})
	s.compactMin = 1
	sh := s.shards[0]
	sh.mu.Lock()
	if sh.garbage < sh.live {
		sh.mu.Unlock()
		t.Fatalf("setup: garbage %d < live %d, compaction would not trigger", sh.garbage, sh.live)
	}
	s.maybeCompactLocked(sh)
	sh.mu.Unlock()

	if !s.ReadOnly() {
		t.Fatal("store must degrade to read-only when compaction hits ENOSPC")
	}
	if st := s.StatsSnapshot(); st.Compactions != 0 {
		t.Fatalf("compactions = %d, want 0 (aborted)", st.Compactions)
	}
	// The old segment is untouched: every live record still reads.
	for i := 0; i < n; i++ {
		e := entry(i, 2)
		data, _, ok := s.Get(e.ID)
		if !ok || !bytes.Equal(data, e.Result) {
			t.Fatalf("Get(%s) after aborted compaction: ok=%v", e.ID, ok)
		}
	}
}

func TestDiskBudgetWatchdog(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustPut(t, s, entry(0, 1))

	free := int64(10 << 20)
	cfg := ScrubConfig{
		Pace:           -1,
		DiskFloorBytes: 64 << 20,
		FreeSpace:      func(string) (int64, error) { return free, nil },
	}
	rep := s.ScrubOnce(context.Background(), cfg)
	if !rep.ReadOnly || !s.ReadOnly() {
		t.Fatal("watchdog must flip read-only below the floor")
	}
	if rep.FreeBytes != free {
		t.Fatalf("FreeBytes = %d, want %d", rep.FreeBytes, free)
	}

	// Hysteresis: recovering past the floor but short of twice it keeps
	// the store read-only; past twice the floor it becomes writable.
	free = 96 << 20
	if rep = s.ScrubOnce(context.Background(), cfg); !rep.ReadOnly {
		t.Fatal("watchdog cleared read-only inside the hysteresis band")
	}
	free = 200 << 20
	if rep = s.ScrubOnce(context.Background(), cfg); rep.ReadOnly {
		t.Fatal("watchdog must clear read-only once space recovers")
	}
	if _, err := s.Put(entry(1, 1)); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}

	// A manual flip is operator intent: the watchdog must not clear it.
	s.SetReadOnly(true)
	if rep = s.ScrubOnce(context.Background(), cfg); !rep.ReadOnly {
		t.Fatal("watchdog overrode a manual read-only flip")
	}
}

func TestScrubSkipsEntriesOnInjectedReadError(t *testing.T) {
	fi := faultinject.New(faultinject.Config{
		Seed: 5, Rate: 1,
		Sites: []string{"store.scrub"},
		Kinds: []faultinject.Kind{faultinject.KindErr},
	})
	s, err := Open(Config{Dir: t.TempDir(), Shards: 2, Fault: fi})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	mustPut(t, s, entry(0, 1))
	rep := s.ScrubOnce(context.Background(), ScrubConfig{Pace: -1})
	if rep.Verified != 0 || rep.Corrupt != 0 {
		t.Fatalf("report = %+v, want the entry skipped", rep)
	}
}

func TestBackgroundScrubberHealsWithoutOperator(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 6
	want := map[string][]byte{}
	for i := 0; i < n; i++ {
		e := entry(i, 1)
		mustPut(t, s, e)
		want[e.ID] = e.Result
	}
	for i := 0; i < n; i += 2 {
		flipResultByte(t, s, entry(i, 1).ID)
	}

	s.StartScrubber(ScrubConfig{
		Interval: time.Millisecond,
		Pace:     -1,
		Repair:   repairFromSource(s, want),
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.StatsSnapshot()
		if st.Repairs >= n/2 && st.MissingResults == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrubber did not heal in time: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.StopScrubber()
	for id, res := range want {
		data, _, ok := s.Get(id)
		if !ok || !bytes.Equal(data, res) {
			t.Fatalf("Get(%s) after background heal: ok=%v", id, ok)
		}
	}
}
