//go:build !linux && !darwin

package store

import "errors"

// freeBytes is unavailable on this platform; the disk-budget watchdog is
// effectively disabled unless ScrubConfig.FreeSpace overrides the probe.
func freeBytes(string) (int64, error) {
	return -1, errors.ErrUnsupported
}
