package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"schemaevo/internal/telemetry"
)

// entry fabricates a deterministic test entry; source and result bytes
// are arbitrary payloads from the store's point of view.
func entry(i, version int) Entry {
	id := fmt.Sprintf("proj-%04d", i)
	return Entry{
		ID:          fmt.Sprintf("%s-v%d", id, version),
		Name:        id,
		Fingerprint: fmt.Sprintf("fp-%s-v%d", id, version),
		Source:      []byte(fmt.Sprintf("source of %s version %d", id, version)),
		Result:      []byte(fmt.Sprintf("result of %s version %d", id, version)),
	}
}

func mustPut(t *testing.T, s *Store, e Entry) string {
	t.Helper()
	prev, err := s.Put(e)
	if err != nil {
		t.Fatalf("Put(%s): %v", e.ID, err)
	}
	return prev
}

func wantGet(t *testing.T, s *Store, id, tier string, want []byte) {
	t.Helper()
	data, gotTier, ok := s.Get(id)
	if !ok {
		t.Fatalf("Get(%s): miss, want hit from %s", id, tier)
	}
	if gotTier != tier {
		t.Fatalf("Get(%s): served from %s, want %s", id, gotTier, tier)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("Get(%s): wrong bytes", id)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	for _, mode := range []string{"memory", "disk"} {
		t.Run(mode, func(t *testing.T) {
			cfg := Config{Shards: 4}
			if mode == "disk" {
				cfg.Dir = t.TempDir()
			}
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			for i := 0; i < 20; i++ {
				mustPut(t, s, entry(i, 1))
			}
			if got := s.Len(); got != 20 {
				t.Fatalf("Len = %d, want 20", got)
			}
			for i := 0; i < 20; i++ {
				e := entry(i, 1)
				wantGet(t, s, e.ID, "hot", e.Result)
				src, ok := s.Source(e.ID)
				if !ok || !bytes.Equal(src, e.Source) {
					t.Fatalf("Source(%s): ok=%v, wrong bytes", e.ID, ok)
				}
				id, ok := s.LatestID(e.Name)
				if !ok || id != e.ID {
					t.Fatalf("LatestID(%s) = %q, %v", e.Name, id, ok)
				}
			}
			if _, _, ok := s.Get("no-such-id"); ok {
				t.Fatal("Get of unknown id reported a hit")
			}
		})
	}
}

func TestOverwriteSupersedes(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	v1, v2 := entry(0, 1), entry(0, 2)
	if prev := mustPut(t, s, v1); prev != "" {
		t.Fatalf("first Put returned prev %q", prev)
	}
	if prev := mustPut(t, s, v2); prev != v1.ID {
		t.Fatalf("overwrite returned prev %q, want %q", prev, v1.ID)
	}
	if id, _ := s.LatestID(v1.Name); id != v2.ID {
		t.Fatalf("LatestID = %q, want %q", id, v2.ID)
	}
	if _, _, ok := s.Get(v1.ID); ok {
		t.Fatal("superseded entry still served")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	// Re-putting identical content must not report itself as superseded.
	if prev := mustPut(t, s, v2); prev != "" {
		t.Fatalf("idempotent re-put returned prev %q", prev)
	}
}

func TestDeleteAndTombstoneSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		mustPut(t, s, entry(i, 1))
	}
	victim := entry(2, 1)
	if ok, err := s.Delete(victim.ID); !ok || err != nil {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if ok, _ := s.Delete(victim.ID); ok {
		t.Fatal("second Delete of same id reported true")
	}
	if s.Len() != 5 {
		t.Fatalf("Len after delete = %d, want 5", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the tombstone must keep the victim dead; everyone else lives.
	s2, err := Open(Config{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 5 {
		t.Fatalf("Len after reopen = %d, want 5", s2.Len())
	}
	if _, ok := s2.LatestID(victim.Name); ok {
		t.Fatal("deleted project resurrected after reopen")
	}
	for _, i := range []int{0, 1, 3, 4, 5} {
		e := entry(i, 1)
		wantGet(t, s2, e.ID, "disk", e.Result)
	}
}

func TestReopenResolvesNewestVersion(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 3; v++ {
		mustPut(t, s, entry(7, v))
	}
	s.Close()

	s2, err := Open(Config{Dir: dir, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	want := entry(7, 3)
	id, ok := s2.LatestID(want.Name)
	if !ok || id != want.ID {
		t.Fatalf("LatestID = %q, %v; want %q", id, ok, want.ID)
	}
	wantGet(t, s2, want.ID, "disk", want.Result)
	if _, _, ok := s2.Get(entry(7, 1).ID); ok {
		t.Fatal("stale version still live after reopen")
	}
}

func TestReopenIgnoresDifferingShardConfig(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustPut(t, s, entry(i, 1))
	}
	s.Close()

	// A config asking for a different shard count must not re-map IDs away
	// from the files that hold their records.
	s2, err := Open(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(s2.shards) != 5 {
		t.Fatalf("reopen used %d shards, want persisted 5", len(s2.shards))
	}
	for i := 0; i < 10; i++ {
		e := entry(i, 1)
		wantGet(t, s2, e.ID, "disk", e.Result)
	}
}

func TestHotEvictionFallsThroughToDisk(t *testing.T) {
	tel := telemetry.New()
	s, err := Open(Config{Dir: t.TempDir(), Shards: 2, HotEntries: 1, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a, b := entry(0, 1), entry(1, 1)
	mustPut(t, s, a)
	mustPut(t, s, b) // evicts a from the 1-entry hot tier
	wantGet(t, s, a.ID, "disk", a.Result)
	wantGet(t, s, a.ID, "hot", a.Result) // promoted back
	st := s.StatsSnapshot()
	if st.Evictions == 0 {
		t.Fatal("expected hot-tier evictions")
	}
	rep := tel.Snapshot()
	if rep.Store.DiskHits == 0 || rep.Store.Evictions == 0 {
		t.Fatalf("telemetry: disk_hits=%d evictions=%d, want both > 0",
			rep.Store.DiskHits, rep.Store.Evictions)
	}
}

func TestMemoryModeResultEvictionLeavesSource(t *testing.T) {
	s, err := Open(Config{Shards: 2, HotEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a, b := entry(0, 1), entry(1, 1)
	mustPut(t, s, a)
	mustPut(t, s, b)
	// With no disk tier the evicted result is gone…
	if _, _, ok := s.Get(a.ID); ok {
		t.Fatal("memory mode served an evicted result")
	}
	// …but the source survives, so the entry is recomputable.
	src, ok := s.Source(a.ID)
	if !ok || !bytes.Equal(src, a.Source) {
		t.Fatal("memory mode lost the source snapshot")
	}
	if err := s.PutResult(a.ID, a.Result); err != nil {
		t.Fatal(err)
	}
	wantGet(t, s, a.ID, "hot", a.Result)
}

func TestPutResultPersists(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := entry(3, 1)
	e.Result = nil // source-only submission: result attached later
	mustPut(t, s, e)
	if _, _, ok := s.Get(e.ID); ok {
		t.Fatal("result served before PutResult")
	}
	if st := s.StatsSnapshot(); st.MissingResults != 1 {
		t.Fatalf("MissingResults = %d, want 1", st.MissingResults)
	}
	res := []byte("late result")
	if err := s.PutResult(e.ID, res); err != nil {
		t.Fatal(err)
	}
	if err := s.PutResult("ghost", res); err == nil {
		t.Fatal("PutResult for unknown id succeeded")
	}
	s.Close()

	s2, err := Open(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	wantGet(t, s2, e.ID, "disk", res)
}

func TestEachIteratesNameOrder(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, i := range []int{5, 1, 3} {
		mustPut(t, s, entry(i, 1))
	}
	var names []string
	s.Each(func(id, name string, result []byte) {
		names = append(names, name)
		if result == nil {
			t.Fatalf("Each(%s): nil result", name)
		}
	})
	want := []string{"proj-0001", "proj-0003", "proj-0005"}
	if len(names) != len(want) {
		t.Fatalf("Each visited %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Each visited %v, want %v", names, want)
		}
	}
}

func TestCompactionReclaimsGarbage(t *testing.T) {
	dir := t.TempDir()
	// A tiny compaction floor so churn triggers it quickly.
	s, err := Open(Config{Dir: dir, Shards: 1, CompactMinBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 50; v++ {
		mustPut(t, s, entry(0, v))
	}
	st := s.StatsSnapshot()
	if st.Compactions == 0 {
		t.Fatal("expected compactions under churn")
	}
	want := entry(0, 50)
	wantGet(t, s, want.ID, "hot", want.Result)

	// The segment must have shrunk to roughly the live set.
	fi, err := os.Stat(filepath.Join(dir, "shard-000.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 4*recordSize(want.ID, want.Name, want.Fingerprint, len(want.Result)) {
		t.Fatalf("segment still %d bytes after compaction", fi.Size())
	}
	s.Close()

	// Compacted state must survive reopen.
	s2, err := Open(Config{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	wantGet(t, s2, want.ID, "disk", want.Result)
	src, ok := s2.Source(want.ID)
	if !ok || !bytes.Equal(src, want.Source) {
		t.Fatal("source lost across compaction + reopen")
	}
}

// TestCompactionPreservesSequenceNumbers pins that compaction re-frames
// surviving records at their ORIGINAL sequence numbers. Re-stamping with
// fresh sequences could outrank a concurrent Put's records in another
// shard (supersede is not atomic across shards), letting a crash elect a
// stale version at recovery.
func TestCompactionPreservesSequenceNumbers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 1, CompactMinBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	const versions = 10
	for v := 1; v <= versions; v++ {
		mustPut(t, s, entry(0, v))
	}
	if s.StatsSnapshot().Compactions == 0 {
		t.Fatal("no compaction under churn")
	}
	s.Close()

	// Put v allocates sequences (2v-1, 2v) for its source and result; the
	// compacted segment must hold the final version's records at exactly
	// those values, not re-stamped ones.
	data, err := os.ReadFile(filepath.Join(dir, "shard-000.seg"))
	if err != nil {
		t.Fatal(err)
	}
	recs, bad := scanRecords(data[len(segHeader):], int64(len(segHeader)))
	if bad != 0 {
		t.Fatalf("%d damaged records in compacted segment", bad)
	}
	want := entry(0, versions)
	wantSeq := map[byte]uint64{recSource: 2*versions - 1, recResult: 2 * versions}
	for _, r := range recs {
		if r.id != want.ID {
			continue
		}
		if r.seq != wantSeq[r.kind] {
			t.Fatalf("kind-%d record seq = %d after compaction, want original %d", r.kind, r.seq, wantSeq[r.kind])
		}
		delete(wantSeq, r.kind)
	}
	if len(wantSeq) != 0 {
		t.Fatalf("live records missing from compacted segment: %v", wantSeq)
	}
}

// TestOpenRejectsInvalidStoreMeta pins that a present-but-unreadable
// store.json fails Open loudly: silently falling back to the configured
// shard count could leave whole shard files unscanned, their records
// invisible with no error.
func TestOpenRejectsInvalidStoreMeta(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, entry(0, 1))
	s.Close()

	metaPath := filepath.Join(dir, "store.json")
	for _, bad := range []string{"{not json", `{"version":1,"shards":0}`, `{"version":1,"shards":-2}`} {
		if err := os.WriteFile(metaPath, []byte(bad), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(Config{Dir: dir, Shards: 3}); err == nil {
			t.Fatalf("Open succeeded with store.json %q", bad)
		}
	}

	// A repaired sidecar restores service over the untouched segments.
	if err := os.WriteFile(metaPath, []byte(`{"version":1,"shards":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Dir: dir, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	e := entry(0, 1)
	wantGet(t, s2, e.ID, "disk", e.Result)
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(Config{Dir: t.TempDir(), Shards: 4, HotEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := 1; v <= 20; v++ {
				e := entry(w, v)
				if _, err := s.Put(e); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, _, ok := s.Get(e.ID); !ok {
					t.Errorf("Get(%s) missed its own Put", e.ID)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	for w := 0; w < 8; w++ {
		e := entry(w, 20)
		if id, _ := s.LatestID(e.Name); id != e.ID {
			t.Fatalf("LatestID(%s) = %q, want %q", e.Name, id, e.ID)
		}
	}
}
