package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"schemaevo/internal/faultinject"
)

// The crash suite drives the store's durability story end to end: torn
// flushes (a crash mid-write), truncated segments, and silent bit-rot.
// The invariant under every failure mode is the same — recovery
// quarantines exactly the damaged records, never serves wrong bytes, and
// every undamaged entry keeps working.

func TestTornFlushRecovery(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(faultinject.Config{
		Seed:  1,
		Rate:  0.4,
		Kinds: []faultinject.Kind{faultinject.KindErr},
		Sites: []string{"store.flush"},
	})
	s, err := Open(Config{Dir: dir, Shards: 3, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}

	torn := map[string]bool{}
	for i := 0; i < 30; i++ {
		e := entry(i, 1)
		if _, err := s.Put(e); err != nil {
			torn[e.ID] = true
			// A torn flush is not data loss while the process lives: the
			// hot tier still has the result.
			wantGet(t, s, e.ID, "hot", e.Result)
		}
	}
	if len(torn) == 0 || len(torn) == 30 {
		t.Fatalf("fault plan tore %d/30 writes; the test needs both torn and clean entries", len(torn))
	}
	s.Close()

	// "Crash": reopen the directory with no injector. Clean entries must
	// be byte-identical; torn entries may be degraded but never wrong.
	s2, err := Open(Config{Dir: dir, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if q := s2.StatsSnapshot().Quarantined; q == 0 {
		t.Fatal("recovery scan quarantined nothing despite torn writes")
	}
	for i := 0; i < 30; i++ {
		e := entry(i, 1)
		if torn[e.ID] {
			if data, _, ok := s2.Get(e.ID); ok && !bytes.Equal(data, e.Result) {
				t.Fatalf("torn entry %s served wrong result bytes", e.ID)
			}
			if src, ok := s2.Source(e.ID); ok && !bytes.Equal(src, e.Source) {
				t.Fatalf("torn entry %s served wrong source bytes", e.ID)
			}
			continue
		}
		wantGet(t, s2, e.ID, "disk", e.Result)
		src, ok := s2.Source(e.ID)
		if !ok || !bytes.Equal(src, e.Source) {
			t.Fatalf("clean entry %s lost its source to someone else's torn write", e.ID)
		}
	}
}

func TestTruncatedSegmentRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		mustPut(t, s, entry(i, 1))
	}
	s.Close()

	// Chop the tail off one shard — the canonical torn-at-crash shape.
	victimPath := filepath.Join(dir, "shard-000.seg")
	fi, err := os.Stat(victimPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victimPath, fi.Size()-30); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if q := s2.StatsSnapshot().Quarantined; q == 0 {
		t.Fatal("truncation quarantined nothing")
	}
	// Every name stays live (each entry's earlier records survive); at
	// most the final record's owner loses its result.
	if s2.Len() != 12 {
		t.Fatalf("Len after truncation = %d, want 12", s2.Len())
	}
	served := 0
	for i := 0; i < 12; i++ {
		e := entry(i, 1)
		if data, _, ok := s2.Get(e.ID); ok {
			if !bytes.Equal(data, e.Result) {
				t.Fatalf("entry %s served wrong bytes after truncation", e.ID)
			}
			served++
		} else {
			// The degraded entry must still be recomputable.
			src, ok := s2.Source(e.ID)
			if !ok || !bytes.Equal(src, e.Source) {
				t.Fatalf("entry %s lost both result and source", e.ID)
			}
		}
	}
	if served < 11 {
		t.Fatalf("only %d/12 results served; truncating one tail must cost at most one", served)
	}
}

func TestBitFlipQuarantinesOnlyDamagedRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustPut(t, s, entry(i, 1))
	}
	s.Close()

	// Locate a mid-file record with the segment scanner and flip one body
	// byte — silent media corruption, no length damage.
	segPath := filepath.Join(dir, "shard-000.seg")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, bad := scanRecords(data[len(segHeader):], int64(len(segHeader)))
	if bad != 0 || len(recs) != 20 {
		t.Fatalf("pre-flip scan: %d records, %d bad; want 20, 0", len(recs), bad)
	}
	victim := recs[9]
	data[victim.bodyOff+victim.bodyLen/2] ^= 0x40
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if q := s2.StatsSnapshot().Quarantined; q != 1 {
		t.Fatalf("quarantined %d records, want exactly the flipped one", q)
	}
	if s2.Len() != 10 {
		t.Fatalf("Len = %d, want 10 (bit flip must not kill the entry)", s2.Len())
	}
	degraded := 0
	for i := 0; i < 10; i++ {
		e := entry(i, 1)
		resOK := false
		if data, _, ok := s2.Get(e.ID); ok {
			if !bytes.Equal(data, e.Result) {
				t.Fatalf("entry %s served flipped bytes", e.ID)
			}
			resOK = true
		}
		src, srcOK := s2.Source(e.ID)
		if srcOK && !bytes.Equal(src, e.Source) {
			t.Fatalf("entry %s served flipped source", e.ID)
		}
		if !resOK || !srcOK {
			degraded++
			if !resOK && !srcOK {
				t.Fatalf("entry %s lost both artifacts to a single bit flip", e.ID)
			}
		}
	}
	if degraded != 1 {
		t.Fatalf("%d entries degraded, want exactly 1", degraded)
	}
}

func TestCorruptFlushIsLatentUntilRead(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(faultinject.Config{
		Seed:  7,
		Rate:  0.3,
		Kinds: []faultinject.Kind{faultinject.KindCorrupt},
		Sites: []string{"store.flush"},
	})
	s, err := Open(Config{Dir: dir, Shards: 2, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		// Bit-rot faults do not surface at write time — that is the point.
		mustPut(t, s, entry(i, 1))
	}
	fired := 0
	for _, n := range inj.Fired() {
		fired += n
	}
	if fired == 0 || fired == 20 {
		t.Fatalf("fault plan corrupted %d/20 flushes; need a mix", fired)
	}
	s.Close()

	s2, err := Open(Config{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if q := s2.StatsSnapshot().Quarantined; q == 0 {
		t.Fatal("latent corruption never caught")
	}
	for i := 0; i < 20; i++ {
		e := entry(i, 1)
		if data, _, ok := s2.Get(e.ID); ok && !bytes.Equal(data, e.Result) {
			t.Fatalf("entry %s served mangled result", e.ID)
		}
		if src, ok := s2.Source(e.ID); ok && !bytes.Equal(src, e.Source) {
			t.Fatalf("entry %s served mangled source", e.ID)
		}
	}
}

// TestReadTimeQuarantine corrupts a record underneath a live store and
// checks the read path (not just recovery) quarantines it: the result
// lookup degrades to a miss, the entry's other artifact keeps serving.
func TestReadTimeQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 1, HotEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a, b := entry(0, 1), entry(1, 1)
	mustPut(t, s, a)
	mustPut(t, s, b) // evicts a's result from the hot tier

	segPath := filepath.Join(dir, "shard-000.seg")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, _ := scanRecords(data[len(segHeader):], int64(len(segHeader)))
	// Records land in Put order: a.src, a.res, b.src, b.res.
	victim := recs[1]
	if victim.id != a.ID || victim.kind != recResult {
		t.Fatalf("unexpected record layout: %+v", victim)
	}
	f, err := os.OpenFile(segPath, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, victim.bodyOff); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, _, ok := s.Get(a.ID); ok {
		t.Fatal("Get served a corrupt record")
	}
	if q := s.StatsSnapshot().Quarantined; q != 1 {
		t.Fatalf("Quarantined = %d, want 1", q)
	}
	// Quarantine is sticky: the next lookup is a plain miss, no rescan.
	if _, _, ok := s.Get(a.ID); ok {
		t.Fatal("quarantined record resurrected")
	}
	if src, ok := s.Source(a.ID); !ok || !bytes.Equal(src, a.Source) {
		t.Fatal("source unavailable after result quarantine")
	}
	// Re-analysis write-back restores full service.
	if err := s.PutResult(a.ID, a.Result); err != nil {
		t.Fatal(err)
	}
	wantGet(t, s, a.ID, "hot", a.Result)
}

// TestCrossShardDeleteSurvivesCompaction pins the durable-delete
// invariant against the cross-shard supersede hazard: v1 and v2 of a name
// hash to different shards, so after Put(v1), Put(v2), Delete(v2) the
// only thing keeping v1's intact records (garbage in shard A, not yet
// compacted) dead at recovery is v2's tombstone in shard B. Compacting
// shard B must therefore carry the tombstone — dropping it would resurrect
// the deleted project on the next Open.
func TestCrossShardDeleteSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 4, CompactMinBytes: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Find a project whose v1 and v2 IDs land in different shards.
	var v1, v2 Entry
	found := false
	for i := 0; i < 64 && !found; i++ {
		a, b := entry(i, 1), entry(i, 2)
		if s.shardFor(a.ID) != s.shardFor(b.ID) {
			v1, v2, found = a, b, true
		}
	}
	if !found {
		t.Fatal("no entry pair split across shards in 64 candidates")
	}
	shA := s.shardFor(v1.ID)

	// Ballast: enough live bytes in shard A that invalidating v1 never
	// trips A's compaction (which would reclaim the garbage this test
	// needs to survive).
	ballast := make([]Entry, 0, 3)
	for j := 100; len(ballast) < 3; j++ {
		e := entry(j, 1)
		e.Source = bytes.Repeat([]byte("ballast-src "), 100)
		e.Result = bytes.Repeat([]byte("ballast-res "), 100)
		if s.shardFor(e.ID) == shA {
			mustPut(t, s, e)
			ballast = append(ballast, e)
		}
	}

	mustPut(t, s, v1)
	if prev := mustPut(t, s, v2); prev != v1.ID {
		t.Fatalf("Put(v2) superseded %q, want %q", prev, v1.ID)
	}
	// Delete v2: its records retire in shard B, so B's garbage exceeds its
	// live bytes (just the tombstone) and compaction triggers right there.
	if ok, err := s.Delete(v2.ID); !ok || err != nil {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if c := s.StatsSnapshot().Compactions; c == 0 {
		t.Fatal("tombstone shard never compacted; the scenario needs the compaction to run")
	}
	s.Close()

	s2, err := Open(Config{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if id, ok := s2.LatestID(v1.Name); ok {
		t.Fatalf("deleted project resurrected after compaction + reopen as %q", id)
	}
	for _, id := range []string{v1.ID, v2.ID} {
		if _, _, ok := s2.Get(id); ok {
			t.Fatalf("deleted version %s still served after reopen", id)
		}
	}
	for _, e := range ballast {
		wantGet(t, s2, e.ID, "disk", e.Result)
	}
	// The guard must also survive a second compaction cycle and reopen.
	for v := 3; v <= 20; v++ {
		e := entry(200, v)
		e.Source = bytes.Repeat([]byte("churn "), 50)
		e.Result = bytes.Repeat([]byte("churn "), 50)
		mustPut(t, s2, e)
	}
	s2.Close()
	s3, err := Open(Config{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if _, ok := s3.LatestID(v1.Name); ok {
		t.Fatal("deleted project resurrected after churn + reopen")
	}
}

// TestTombstoneDroppedOnceNameRelives pins the other half of the guard
// contract: once a deleted name is re-created with a newer sequence, its
// tombstone is superseded and compaction may drop it — the store must not
// leak one tombstone per ever-deleted name forever, and the re-created
// version must stay live across compaction and reopen.
func TestTombstoneDroppedOnceNameRelives(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 1, CompactMinBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	v1, v2 := entry(0, 1), entry(0, 2)
	mustPut(t, s, v1)
	if ok, err := s.Delete(v1.ID); !ok || err != nil {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	mustPut(t, s, v2) // the name lives again, superseding the tombstone
	for v := 3; v <= 10; v++ {
		mustPut(t, s, entry(0, v)) // churn to force compactions
	}
	if c := s.StatsSnapshot().Compactions; c == 0 {
		t.Fatal("no compaction under churn")
	}
	if n := len(s.shards[0].tombs); n != 0 {
		t.Fatalf("%d tombstones still tracked after the name relived", n)
	}
	s.Close()

	s2, err := Open(Config{Dir: dir, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	want := entry(0, 10)
	id, ok := s2.LatestID(want.Name)
	if !ok || id != want.ID {
		t.Fatalf("LatestID = %q, %v; want %q live", id, ok, want.ID)
	}
	wantGet(t, s2, want.ID, "disk", want.Result)
}

// TestRecoveryScaleMixedDamage runs the full gauntlet — churn, deletes,
// then scattered damage — and checks the recovered store agrees with the
// survivors.
func TestRecoveryScaleMixedDamage(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		mustPut(t, s, entry(i, 1))
		if i%3 == 0 {
			mustPut(t, s, entry(i, 2)) // overwrite churn
		}
	}
	deleted := map[string]bool{}
	for _, i := range []int{4, 11, 19} {
		e := entry(i, 1)
		if ok, err := s.Delete(e.ID); !ok || err != nil {
			t.Fatalf("Delete(%s) = %v, %v", e.ID, ok, err)
		}
		deleted[e.Name] = true
	}
	s.Close()

	// Flip a byte in the middle of two shard files.
	for _, shard := range []string{"shard-001.seg", "shard-002.seg"} {
		p := filepath.Join(dir, shard)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > 200 {
			data[len(data)/2] ^= 0x01
			if err := os.WriteFile(p, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	s2, err := Open(Config{Dir: dir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 22 {
		t.Fatalf("Len = %d, want 22 (25 put, 3 deleted)", s2.Len())
	}
	for i := 0; i < 25; i++ {
		name := fmt.Sprintf("proj-%04d", i)
		id, live := s2.LatestID(name)
		if deleted[name] {
			if live {
				t.Fatalf("deleted %s resurrected", name)
			}
			continue
		}
		if !live {
			t.Fatalf("surviving %s not live", name)
		}
		want := entry(i, 1)
		if i%3 == 0 {
			want = entry(i, 2)
		}
		if id != want.ID {
			t.Fatalf("LatestID(%s) = %q, want %q", name, id, want.ID)
		}
		if data, _, ok := s2.Get(id); ok && !bytes.Equal(data, want.Result) {
			t.Fatalf("%s served wrong result", name)
		}
		if src, ok := s2.Source(id); ok && !bytes.Equal(src, want.Source) {
			t.Fatalf("%s served wrong source", name)
		}
	}
}
