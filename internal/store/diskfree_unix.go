//go:build linux || darwin

package store

import "syscall"

// freeBytes reports the bytes available to unprivileged writers on the
// filesystem holding dir — the disk-budget watchdog's default probe.
func freeBytes(dir string) (int64, error) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(dir, &st); err != nil {
		return -1, err
	}
	return int64(st.Bavail) * int64(st.Bsize), nil
}
