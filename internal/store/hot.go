package store

import (
	"container/list"
	"sync"
)

// hotTier is the in-memory tier: encoded results keyed by project ID,
// bounded both by entry count and by total byte size, evicting from the
// least-recently-used end. Eviction is harmless by construction — every
// entry is either persisted in the disk tier or recomputable from its
// retained source snapshot — so the hot tier is a pure accelerator, never
// the owner of last resort.
type hotTier struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	order      *list.List // front = most recently used; values are *hotEntry
	byID       map[string]*list.Element

	evictions int64
	onEvict   func()
}

type hotEntry struct {
	id   string
	data []byte
}

func newHotTier(maxEntries int, maxBytes int64, onEvict func()) *hotTier {
	if maxEntries < 1 {
		maxEntries = 1024
	}
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &hotTier{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		byID:       map[string]*list.Element{},
		onEvict:    onEvict,
	}
}

func (h *hotTier) get(id string) ([]byte, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	el, ok := h.byID[id]
	if !ok {
		return nil, false
	}
	h.order.MoveToFront(el)
	return el.Value.(*hotEntry).data, true
}

func (h *hotTier) put(id string, data []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if el, ok := h.byID[id]; ok {
		e := el.Value.(*hotEntry)
		h.bytes += int64(len(data)) - int64(len(e.data))
		e.data = data
		h.order.MoveToFront(el)
	} else {
		h.byID[id] = h.order.PushFront(&hotEntry{id: id, data: data})
		h.bytes += int64(len(data))
	}
	for h.order.Len() > 1 && (h.order.Len() > h.maxEntries || h.bytes > h.maxBytes) {
		cold := h.order.Back()
		e := cold.Value.(*hotEntry)
		h.order.Remove(cold)
		delete(h.byID, e.id)
		h.bytes -= int64(len(e.data))
		h.evictions++
		if h.onEvict != nil {
			h.onEvict()
		}
	}
}

func (h *hotTier) remove(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if el, ok := h.byID[id]; ok {
		h.bytes -= int64(len(el.Value.(*hotEntry).data))
		h.order.Remove(el)
		delete(h.byID, id)
	}
}

func (h *hotTier) stats() (entries int, bytes, evictions int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.order.Len(), h.bytes, h.evictions
}
