// Package store is the service's source of truth for analyzed projects: a
// sharded, content-addressed, two-tier result store. The hot tier is a
// bounded in-memory LRU of encoded results; the disk tier (optional —
// enabled by Config.Dir) is one append-friendly segment file per shard
// holding CRC-32C-framed records of both the analysis result and the
// submitted source snapshot, in the pipeline's binary codec.
//
// Persisting the source next to the result is what turns eviction and
// corruption from data loss into extra work: a result missing from every
// tier is recomputable from its snapshot, and a project submitting version
// N+1 can be re-analyzed incrementally against its stored parse. The store
// itself is policy-free — it keeps bytes, liveness and integrity; analysis
// belongs to the caller.
//
// Durability model: records are appended and flushed per operation, with
// no fsync — the store targets crash-consistency (every record is either
// wholly readable or quarantined by its frame CRC), not power-loss
// durability. Liveness is resolved at recovery time by per-name
// max-sequence: an overwrite simply appends newer records, a delete
// appends a tombstone, and compaction rewrites a shard keeping live
// records (at their original sequence numbers) plus any tombstone that
// still guards the name — a tombstone may outrank stale records of the
// same name in OTHER shards, so it is only dropped once the name is live
// again under a newer sequence. See DESIGN.md §11 for the recovery
// invariants.
package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"

	"schemaevo/internal/faultinject"
	"schemaevo/internal/telemetry"
)

// ErrReadOnly is returned by mutating operations while the store is in
// read-only mode: the disk-budget watchdog found free space below its
// floor, a flush hit ENOSPC, or an operator flipped the mode manually.
// Reads keep serving; callers should answer retryable unavailability
// (HTTP 503) rather than treating this as data loss.
var ErrReadOnly = errors.New("store: read-only mode")

// IsDiskFull reports whether err is an out-of-space condition (real or
// injected via the "store.diskfull" fault site).
func IsDiskFull(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}

// Config parameterizes a Store. The zero value is a valid memory-only
// store with default hot-tier bounds.
type Config struct {
	// Dir is the disk tier's directory; empty selects memory-only mode
	// (source snapshots retained unboundedly in memory, results only in
	// the hot tier — still recomputable after eviction).
	Dir string
	// Shards is the number of disk segment files. <= 0 selects 8. The
	// count is fixed at directory creation (persisted in store.json);
	// reopening ignores a differing value.
	Shards int
	// HotEntries caps the hot tier's entry count. <= 0 selects 1024.
	HotEntries int
	// HotBytes caps the hot tier's total encoded-result bytes. <= 0
	// selects 256 MiB.
	HotBytes int64
	// CompactMinBytes is the per-shard garbage floor below which
	// compaction never triggers. <= 0 selects 1 MiB.
	CompactMinBytes int64
	// Telemetry receives store metrics; nil disables (nil-safe collector).
	Telemetry *telemetry.Collector
	// Fault injects deterministic chaos into segment flushes (site
	// "store.flush", keyed by project ID). nil disables.
	Fault *faultinject.Injector
	// OnCommit, when set, is called after each mutation (Put, PutResult,
	// Delete) is fully visible to readers, once per affected project ID
	// — for Put that includes the superseded previous ID. seq is the
	// mutation's durable sequence number, monotonic across the store, so
	// callers can use it as an epoch. Called without store locks held;
	// implementations must not call back into the Store.
	OnCommit func(id string, seq uint64)
}

// Entry is one project's stored state, submitted to Put.
type Entry struct {
	// ID is the short content-hash resource ID; Fingerprint the full one.
	ID, Name, Fingerprint string
	// Source is the pipeline.EncodeRepo snapshot of the submitted repo.
	Source []byte
	// Result is the pipeline.EncodeResult analysis, nil when unknown.
	Result []byte
}

// ref locates one framed record in a shard's segment file. The zero ref
// means absent. seq is the record's durable sequence number — compaction
// re-frames the record with the same seq, so liveness order never drifts
// from logical write order.
type ref struct {
	start, total     int64
	bodyOff, bodyLen int64
	seq              uint64
}

func (r ref) ok() bool { return r.total != 0 }

// meta is the in-memory index entry of one live project.
type meta struct {
	id, name, fp string
	srcMem       []byte // memory mode: the snapshot itself
	src, res     ref    // disk mode: record locations
}

// tomb tracks one durable tombstone a shard must carry through
// compaction. A deleted name's stale records may survive in other shards
// (each version's content-hash ID shards independently), and only this
// tombstone's higher sequence keeps them dead at recovery — so it stays
// until the name is live again under a newer sequence.
type tomb struct {
	id, name, fp string
	seq          uint64
	bytes        int64 // framed size on disk, for live/garbage accounting
}

// shard is one lock domain: a slice of the ID space with its own index
// and segment file.
type shard struct {
	mu      sync.Mutex
	file    *os.File // nil in memory mode
	path    string
	size    int64 // physical append offset
	byID    map[string]*meta
	tombs   map[string]tomb // guarded deleted names (disk mode)
	live    int64           // bytes of records referenced by the index
	garbage int64           // bytes of dead/damaged records awaiting compaction
}

// Store is the two-tier result store. All methods are safe for concurrent
// use. Construct with Open.
type Store struct {
	dir        string
	shards     []*shard
	hot        *hotTier
	tel        *telemetry.Collector
	fault      *faultinject.Injector
	onCommit   func(id string, seq uint64)
	compactMin int64
	seq        atomic.Uint64

	nmu    sync.Mutex
	byName map[string]nameEntry // live project name -> ID + sequence

	// Read-only mode: a mirrored atomic flag for lock-free checks on the
	// mutation paths, with the cause (manual vs disk-budget) guarded by
	// romu so the watchdog never overrides an operator's manual flip.
	romu     sync.Mutex
	readOnly atomic.Bool
	roCause  roCause

	// Background scrubber lifecycle (StartScrubber/StopScrubber).
	smu       sync.Mutex
	scrubStop chan struct{}
	scrubDone chan struct{}

	quarantined atomic.Int64
	compactions atomic.Int64
	flushErrors atomic.Int64
	scrubPasses atomic.Int64
	repairs     atomic.Int64
	roEvents    atomic.Int64
	diskFulls   atomic.Int64
}

// roCause records why the store is read-only, so only the matching
// mechanism clears it.
type roCause int32

const (
	roNone   roCause = iota
	roManual         // SetReadOnly(true)
	roDisk           // ENOSPC on a flush, or the disk-budget watchdog
)

// ReadOnly reports whether the store is currently refusing mutations.
func (s *Store) ReadOnly() bool { return s.readOnly.Load() }

// SetReadOnly flips read-only mode manually. Clearing also clears a
// disk-triggered state (the operator has presumably freed space).
func (s *Store) SetReadOnly(on bool) {
	s.romu.Lock()
	defer s.romu.Unlock()
	if on {
		s.enterReadOnlyLocked(roManual)
	} else {
		s.clearReadOnlyLocked(roNone)
	}
}

func (s *Store) enterReadOnly(c roCause) {
	s.romu.Lock()
	s.enterReadOnlyLocked(c)
	s.romu.Unlock()
}

func (s *Store) enterReadOnlyLocked(c roCause) {
	if s.readOnly.Load() {
		return
	}
	s.readOnly.Store(true)
	s.roCause = c
	s.roEvents.Add(1)
	s.tel.StoreReadOnlyEvent()
	s.tel.SetGauge("store.read_only", 1)
}

// clearReadOnlyLocked leaves read-only mode. A cause of roNone forces the
// clear; a specific cause only clears a matching state, so the disk
// watchdog's recovery never overrides a manual flip.
func (s *Store) clearReadOnlyLocked(c roCause) {
	if !s.readOnly.Load() || (c != roNone && s.roCause != c) {
		return
	}
	s.readOnly.Store(false)
	s.roCause = roNone
	s.tel.SetGauge("store.read_only", 0)
}

// diskFull records an out-of-space incident and degrades to read-only
// instead of failing every subsequent write (or crashing the process).
func (s *Store) diskFull() {
	s.diskFulls.Add(1)
	s.tel.StoreDiskFull()
	s.enterReadOnly(roDisk)
}

// nameEntry is the name index's value: the live ID and the sequence of
// the Put that made it live. Compaction compares the sequence against a
// tombstone's to decide whether the tombstone is superseded.
type nameEntry struct {
	id  string
	seq uint64
}

// storeMeta is the store.json sidecar pinning layout parameters that must
// not drift between opens.
type storeMeta struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

const storeMetaVersion = 1

// Open builds the store, recovering the disk tier's index by scanning
// every shard segment: damaged records are quarantined (counted, skipped,
// their space reclaimed by the next compaction) and every intact record is
// resolved by per-name max-sequence into the live set.
func Open(cfg Config) (*Store, error) {
	s := &Store{
		dir:        cfg.Dir,
		tel:        cfg.Telemetry,
		fault:      cfg.Fault,
		onCommit:   cfg.OnCommit,
		compactMin: cfg.CompactMinBytes,
		byName:     map[string]nameEntry{},
	}
	if s.compactMin <= 0 {
		s.compactMin = 1 << 20
	}
	s.hot = newHotTier(cfg.HotEntries, cfg.HotBytes, func() { s.tel.StoreEvict() })

	n := cfg.Shards
	if n <= 0 {
		n = 8
	}
	if s.dir == "" {
		for i := 0; i < n; i++ {
			s.shards = append(s.shards, &shard{byID: map[string]*meta{}})
		}
		s.seq.Store(1)
		return s, nil
	}

	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	metaPath := filepath.Join(s.dir, "store.json")
	data, err := os.ReadFile(metaPath)
	switch {
	case err == nil:
		var sm storeMeta
		// An unreadable or implausible store.json must not silently fall
		// back to the configured count: a mismatch with the on-disk layout
		// would leave whole shard files unscanned, their records invisible
		// with no error. Refuse to open instead.
		if jerr := json.Unmarshal(data, &sm); jerr != nil {
			return nil, fmt.Errorf("store: invalid %s: %w", metaPath, jerr)
		} else if sm.Shards <= 0 {
			return nil, fmt.Errorf("store: invalid %s: shard count %d", metaPath, sm.Shards)
		} else {
			n = sm.Shards // the on-disk layout wins over the config
		}
	case os.IsNotExist(err):
		data, _ := json.Marshal(storeMeta{Version: storeMetaVersion, Shards: n})
		if werr := os.WriteFile(metaPath, append(data, '\n'), 0o644); werr != nil {
			return nil, fmt.Errorf("store: %w", werr)
		}
	default:
		return nil, fmt.Errorf("store: %w", err)
	}

	type located struct {
		rec
		shard int
	}
	var all []located
	for i := 0; i < n; i++ {
		sh := &shard{
			byID:  map[string]*meta{},
			tombs: map[string]tomb{},
			path:  filepath.Join(s.dir, fmt.Sprintf("shard-%03d.seg", i)),
		}
		f, err := os.OpenFile(sh.path, os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		sh.file = f
		data, err := os.ReadFile(sh.path)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		sh.size = int64(len(data))
		if len(data) == 0 {
			if _, err := f.Write([]byte(segHeader)); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: %w", err)
			}
			sh.size = int64(len(segHeader))
		} else {
			// A damaged file header is not fatal: scan from 0 and let the
			// frame magic resynchronize.
			base := int64(0)
			if len(data) >= len(segHeader) && string(data[:len(segHeader)]) == segHeader {
				base = int64(len(segHeader))
			}
			recs, bad := scanRecords(data[base:], base)
			if bad > 0 {
				s.quarantined.Add(int64(bad))
				for i := 0; i < bad; i++ {
					s.tel.StoreQuarantine()
				}
			}
			for _, r := range recs {
				all = append(all, located{rec: r, shard: i})
			}
		}
		s.shards = append(s.shards, sh)
	}

	// Liveness: the newest record per name decides — a tombstone kills the
	// name, any other kind elects its ID. (Result records participate so a
	// project whose source record was damaged still serves its result.)
	maxSeq := uint64(0)
	nameW := map[string]located{}
	for _, r := range all {
		if r.seq > maxSeq {
			maxSeq = r.seq
		}
		if w, ok := nameW[r.name]; !ok || r.seq > w.seq {
			nameW[r.name] = r
		}
	}
	liveID := map[string]bool{}
	chosen := map[int64]bool{} // by shard-qualified record start offset
	for name, w := range nameW {
		if w.kind != recTombstone {
			liveID[w.id] = true
			s.byName[name] = nameEntry{id: w.id, seq: w.seq}
			continue
		}
		// A winning tombstone keeps guarding: stale records of this name
		// may survive in other shards, and only this record's sequence
		// outranks them. Track it so compaction carries it forward.
		sh := s.shards[w.shard]
		sh.tombs[name] = tomb{id: w.id, name: name, fp: w.fp, seq: w.seq, bytes: w.total}
		sh.live += w.total
		chosen[int64(w.shard)<<40|w.start] = true
	}
	bestSrc := map[string]located{}
	bestRes := map[string]located{}
	for _, r := range all {
		if !liveID[r.id] {
			continue
		}
		switch r.kind {
		case recSource:
			if b, ok := bestSrc[r.id]; !ok || r.seq > b.seq {
				bestSrc[r.id] = r
			}
		case recResult:
			if b, ok := bestRes[r.id]; !ok || r.seq > b.seq {
				bestRes[r.id] = r
			}
		}
	}
	place := func(r located) ref {
		chosen[int64(r.shard)<<40|r.start] = true
		s.shards[r.shard].live += r.total
		return ref{start: r.start, total: r.total, bodyOff: r.bodyOff, bodyLen: r.bodyLen, seq: r.seq}
	}
	for _, id := range sortedKeys(liveID) {
		var m *meta
		shIdx := -1
		if r, ok := bestSrc[id]; ok {
			m = &meta{id: id, name: r.name, fp: r.fp, src: place(r)}
			shIdx = r.shard
		}
		if r, ok := bestRes[id]; ok {
			if m == nil {
				m = &meta{id: id, name: r.name, fp: r.fp}
				shIdx = r.shard
			}
			m.res = place(r)
		}
		if m != nil {
			s.shards[shIdx].byID[id] = m
		}
	}
	for _, r := range all {
		if !chosen[int64(r.shard)<<40|r.start] {
			s.shards[r.shard].garbage += r.total
		}
	}
	s.seq.Store(maxSeq + 1)
	return s, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedTombNames(m map[string]tomb) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Close stops the background scrubber (if running) and releases the
// segment file handles. The store must not be used afterwards.
func (s *Store) Close() error {
	s.StopScrubber()
	var first error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.file != nil {
			if err := sh.file.Close(); err != nil && first == nil {
				first = err
			}
			sh.file = nil
		}
		sh.mu.Unlock()
	}
	return first
}

// shardFor maps an ID to its lock domain.
func (s *Store) shardFor(id string) *shard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

// Len returns the number of live projects.
func (s *Store) Len() int {
	s.nmu.Lock()
	defer s.nmu.Unlock()
	return len(s.byName)
}

// LatestID returns the live project ID for a name — the hook the
// incremental re-analysis path uses to find the version a new submission
// may extend.
func (s *Store) LatestID(name string) (string, bool) {
	s.nmu.Lock()
	defer s.nmu.Unlock()
	e, ok := s.byName[name]
	return e.id, ok
}

// Get returns the encoded result for id and which tier served it ("hot"
// or "disk"). A disk hit is CRC-verified and promoted to the hot tier; a
// record failing verification is quarantined — the entry survives as
// source-only, recomputable on demand.
func (s *Store) Get(id string) (data []byte, tier string, ok bool) {
	if data, ok := s.hot.get(id); ok {
		s.tel.StoreHotHit(int64(len(data)))
		return data, "hot", true
	}
	s.tel.StoreHotMiss()
	sh := s.shardFor(id)
	sh.mu.Lock()
	m := sh.byID[id]
	if m == nil || sh.file == nil || !m.res.ok() {
		sh.mu.Unlock()
		s.tel.StoreDiskMiss()
		return nil, "", false
	}
	body, err := sh.readRecordLocked(m.res)
	if err != nil {
		s.quarantineLocked(sh, &m.res)
		sh.mu.Unlock()
		s.tel.StoreDiskMiss()
		return nil, "", false
	}
	sh.mu.Unlock()
	s.hot.put(id, body)
	s.tel.StoreDiskHit(int64(len(body)))
	return body, "disk", true
}

// Source returns the persisted source snapshot for id
// (pipeline.EncodeRepo bytes), CRC-verified on the disk tier.
func (s *Store) Source(id string) ([]byte, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	m := sh.byID[id]
	if m == nil {
		return nil, false
	}
	if sh.file == nil {
		return m.srcMem, m.srcMem != nil
	}
	if !m.src.ok() {
		return nil, false
	}
	body, err := sh.readRecordLocked(m.src)
	if err != nil {
		s.quarantineLocked(sh, &m.src)
		return nil, false
	}
	return body, true
}

// quarantineLocked retires a record reference that failed verification:
// the entry keeps serving from its other artifacts, the bytes await
// compaction.
func (s *Store) quarantineLocked(sh *shard, r *ref) {
	sh.garbage += r.total
	sh.live -= r.total
	*r = ref{}
	s.quarantined.Add(1)
	s.tel.StoreQuarantine()
}

// Put stores one project: the source snapshot and (when known) the
// result, superseding any live entry with the same name. It returns the
// superseded entry's ID ("" when none, or unchanged). A flush error is
// returned after the in-memory state is updated — the hot tier still
// serves the result; the disk records are quarantined on next read. An
// out-of-space flush additionally wraps syscall.ENOSPC (see IsDiskFull):
// nothing durable landed, so callers must not acknowledge the write. In
// read-only mode Put refuses up front with ErrReadOnly, mutating nothing.
func (s *Store) Put(e Entry) (prevID string, err error) {
	if s.readOnly.Load() {
		return "", ErrReadOnly
	}
	end := s.seq.Add(2)
	seqSrc, seqRes := end-2, end-1
	sh := s.shardFor(e.ID)
	sh.mu.Lock()
	if old := sh.byID[e.ID]; old != nil {
		s.retireLocked(sh, old)
	}
	m := &meta{id: e.ID, name: e.Name, fp: e.Fingerprint}
	if sh.file == nil {
		m.srcMem = e.Source
	} else {
		buf := appendRecord(nil, recSource, seqSrc, e.ID, e.Name, e.Fingerprint, e.Source)
		m.src = ref{
			start: sh.size, total: int64(len(buf)),
			bodyOff: sh.size + int64(len(buf)) - 4 - int64(len(e.Source)), bodyLen: int64(len(e.Source)),
			seq: seqSrc,
		}
		if e.Result != nil {
			resStart := sh.size + int64(len(buf))
			buf = appendRecord(buf, recResult, seqRes, e.ID, e.Name, e.Fingerprint, e.Result)
			total := sh.size + int64(len(buf)) - resStart
			m.res = ref{
				start: resStart, total: total,
				bodyOff: resStart + total - 4 - int64(len(e.Result)), bodyLen: int64(len(e.Result)),
				seq: seqRes,
			}
		}
		sh.live += int64(len(buf))
		err = s.flushLocked(sh, e.ID, buf)
	}
	sh.byID[e.ID] = m
	s.maybeCompactLocked(sh)
	sh.mu.Unlock()

	if e.Result != nil {
		s.hot.put(e.ID, e.Result)
	}
	s.nmu.Lock()
	prevID = s.byName[e.Name].id
	s.byName[e.Name] = nameEntry{id: e.ID, seq: seqRes}
	s.nmu.Unlock()
	if prevID == e.ID {
		prevID = ""
	}
	if prevID != "" {
		s.invalidate(prevID)
	}
	if s.onCommit != nil {
		s.onCommit(e.ID, seqRes)
		if prevID != "" {
			s.onCommit(prevID, seqRes)
		}
	}
	return prevID, err
}

// PutResult attaches (or refreshes) the analysis result of a live entry —
// the write-back after an on-demand re-analysis of an evicted or
// quarantined result.
func (s *Store) PutResult(id string, result []byte) error {
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	seq := s.seq.Add(1) - 1
	sh := s.shardFor(id)
	sh.mu.Lock()
	m := sh.byID[id]
	if m == nil {
		sh.mu.Unlock()
		return fmt.Errorf("store: no live entry %s", id)
	}
	var err error
	if sh.file != nil {
		if m.res.ok() {
			sh.garbage += m.res.total
			sh.live -= m.res.total
		}
		buf := appendRecord(nil, recResult, seq, m.id, m.name, m.fp, result)
		m.res = ref{
			start: sh.size, total: int64(len(buf)),
			bodyOff: sh.size + int64(len(buf)) - 4 - int64(len(result)), bodyLen: int64(len(result)),
			seq: seq,
		}
		sh.live += int64(len(buf))
		err = s.flushLocked(sh, id, buf)
		s.maybeCompactLocked(sh)
	}
	sh.mu.Unlock()
	s.hot.put(id, result)
	if s.onCommit != nil {
		s.onCommit(id, seq)
	}
	return err
}

// Delete removes a live entry: a tombstone record supersedes it on disk
// (so recovery agrees), and every tier forgets it immediately.
func (s *Store) Delete(id string) (bool, error) {
	if s.readOnly.Load() {
		return false, ErrReadOnly
	}
	seq := s.seq.Add(1) - 1
	sh := s.shardFor(id)
	sh.mu.Lock()
	m := sh.byID[id]
	if m == nil {
		sh.mu.Unlock()
		return false, nil
	}
	var err error
	if sh.file != nil {
		buf := appendRecord(nil, recTombstone, seq, m.id, m.name, m.fp, nil)
		// The tombstone is live, guarded state, not garbage-in-waiting: the
		// deleted name's stale records may survive in OTHER shards (each
		// version's ID shards independently), and only this record's higher
		// sequence keeps them dead at recovery. It is tracked and carried
		// through compaction until the name is re-created.
		if old, ok := sh.tombs[m.name]; ok {
			sh.garbage += old.bytes
			sh.live -= old.bytes
		}
		sh.tombs[m.name] = tomb{id: m.id, name: m.name, fp: m.fp, seq: seq, bytes: int64(len(buf))}
		sh.live += int64(len(buf))
		err = s.flushLocked(sh, id, buf)
	}
	s.retireLocked(sh, m)
	delete(sh.byID, id)
	s.maybeCompactLocked(sh)
	sh.mu.Unlock()

	s.hot.remove(id)
	s.nmu.Lock()
	if s.byName[m.name].id == id {
		delete(s.byName, m.name)
	}
	s.nmu.Unlock()
	if s.onCommit != nil {
		s.onCommit(id, seq)
	}
	return true, err
}

// invalidate drops a superseded entry from the index and the hot tier
// (its records become garbage; recovery ignores them by sequence order).
func (s *Store) invalidate(id string) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	if m := sh.byID[id]; m != nil {
		s.retireLocked(sh, m)
		delete(sh.byID, id)
		s.maybeCompactLocked(sh)
	}
	sh.mu.Unlock()
	s.hot.remove(id)
}

// retireLocked accounts a meta's records as garbage.
func (s *Store) retireLocked(sh *shard, m *meta) {
	for _, r := range []ref{m.src, m.res} {
		if r.ok() {
			sh.garbage += r.total
			sh.live -= r.total
		}
	}
}

// Each calls fn for every live entry in name order, with the encoded
// result when one is currently readable (nil otherwise — evicted in
// memory mode, quarantined or pending on disk). It is the aggregate
// rebuild hook a server runs at startup; reads go through the normal
// tiers, warming the hot tier.
func (s *Store) Each(fn func(id, name string, result []byte)) {
	s.nmu.Lock()
	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	ids := make([]string, len(names))
	for i, n := range names {
		ids[i] = s.byName[n].id
	}
	s.nmu.Unlock()
	for i, id := range ids {
		data, _, ok := s.Get(id)
		if !ok {
			data = nil
		}
		fn(id, names[i], data)
	}
}

// flushLocked writes buf at the shard's append offset, honoring the
// "store.flush" fault site: KindErr tears the write (half the buffer
// lands, then an error), KindCorrupt mangles the buffer before a
// successful write (latent bit-rot, caught by record CRCs), KindDelay
// stalls. The append offset always advances by the bytes actually
// written, so later records land where the index says they do.
func (s *Store) flushLocked(sh *shard, key string, buf []byte) error {
	// "store.slowdisk" simulates a degraded device: the write eventually
	// succeeds, it just stalls first.
	if s.fault.At("store.slowdisk", key) == faultinject.KindDelay {
		s.fault.Sleep(context.Background())
	}
	// "store.diskfull" simulates ENOSPC: nothing lands on disk, the store
	// degrades to read-only, and the caller must not acknowledge the
	// write. Previously acked records are untouched.
	if s.fault.At("store.diskfull", key) == faultinject.KindErr {
		s.flushErrors.Add(1)
		s.tel.StoreFlushError()
		s.diskFull()
		return fmt.Errorf("store: flush: %w", syscall.ENOSPC)
	}
	switch s.fault.At("store.flush", key) {
	case faultinject.KindErr:
		// Tear at a key-derived offset so the cut can land anywhere in the
		// batch — mid-frame, between records, or inside the CRC trailer —
		// exactly like a real crash mid-write.
		h := fnv.New32a()
		h.Write([]byte(key))
		cut := 1 + int(h.Sum32())%len(buf)
		if cut >= len(buf) {
			cut = len(buf) - 1
		}
		n, _ := sh.file.WriteAt(buf[:cut], sh.size)
		sh.size += int64(n)
		s.flushErrors.Add(1)
		s.tel.StoreFlushError()
		return &faultinject.Error{Site: "store.flush", Key: key}
	case faultinject.KindCorrupt:
		s.fault.Mangle(buf, key)
	case faultinject.KindDelay:
		s.fault.Sleep(context.Background())
	}
	n, err := sh.file.WriteAt(buf, sh.size)
	sh.size += int64(n)
	s.tel.StoreAppend(int64(len(buf)))
	if err != nil {
		s.flushErrors.Add(1)
		s.tel.StoreFlushError()
		if IsDiskFull(err) {
			s.diskFull()
		}
		return fmt.Errorf("store: flush: %w", err)
	}
	s.tel.StoreFlush()
	return nil
}

// readRecordLocked reads one framed record and verifies its magic and
// CRC, returning the body.
func (sh *shard) readRecordLocked(r ref) ([]byte, error) {
	buf := make([]byte, r.total)
	if _, err := sh.file.ReadAt(buf, r.start); err != nil {
		return nil, fmt.Errorf("store: read record: %w", err)
	}
	recs, _ := scanRecords(buf, r.start)
	if len(recs) != 1 || recs[0].total != r.total {
		return nil, fmt.Errorf("store: record at %d failed verification", r.start)
	}
	return buf[r.bodyOff-r.start : r.bodyOff-r.start+r.bodyLen], nil
}

// maybeCompactLocked rewrites the shard's segment once garbage exceeds
// both the configured floor and the live volume, keeping live records —
// at their original sequence numbers, so liveness order never drifts from
// logical write order even if a crash interleaves with a cross-shard
// supersede — plus every tombstone still guarding a dead name (stale
// same-name records may survive in other shards; only the tombstone's
// higher sequence keeps them dead at recovery). Compaction is crash-safe:
// the replacement is built in a temp file and renamed over the segment,
// so a crash leaves either the old or the new file, never a hybrid.
func (s *Store) maybeCompactLocked(sh *shard) {
	if sh.file == nil || sh.garbage < s.compactMin || sh.garbage < sh.live {
		return
	}
	// "store.diskfull" during compaction: building the replacement file
	// needs transient space a full disk does not have. Abort — the old
	// segment is untouched, every acked record still reads — and degrade
	// to read-only instead of retrying a hopeless rewrite forever.
	if s.fault.At("store.diskfull", "compact:"+sh.path) == faultinject.KindErr {
		s.diskFull()
		return
	}
	// A tombstone is superseded — droppable — only once its name is live
	// again under a newer sequence (the re-created version's records then
	// outrank everything the tombstone guarded). Lock order sh.mu → nmu is
	// safe: no path acquires a shard lock while holding nmu.
	s.nmu.Lock()
	for name, tb := range sh.tombs {
		if le, ok := s.byName[name]; ok && le.seq > tb.seq {
			delete(sh.tombs, name)
		}
	}
	s.nmu.Unlock()

	tmp, err := os.CreateTemp(filepath.Dir(sh.path), "compact-*")
	if err != nil {
		return // compaction is an optimization; try again next trigger
	}
	defer os.Remove(tmp.Name())

	ids := make([]string, 0, len(sh.byID))
	for id := range sh.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	buf := []byte(segHeader)
	type move struct {
		m     *meta
		which *ref
		to    ref
	}
	var moves []move
	for _, id := range ids {
		m := sh.byID[id]
		for _, which := range []*ref{&m.src, &m.res} {
			if !which.ok() {
				continue
			}
			body, err := sh.readRecordLocked(*which)
			if err != nil {
				s.quarantineLocked(sh, which)
				continue
			}
			kind := recSource
			if which == &m.res {
				kind = recResult
			}
			start := int64(len(buf))
			buf = appendRecord(buf, kind, which.seq, m.id, m.name, m.fp, body)
			total := int64(len(buf)) - start
			moves = append(moves, move{m: m, which: which, to: ref{
				start: start, total: total,
				bodyOff: start + total - 4 - int64(len(body)), bodyLen: int64(len(body)),
				seq: which.seq,
			}})
		}
	}
	for _, name := range sortedTombNames(sh.tombs) {
		tb := sh.tombs[name]
		start := int64(len(buf))
		buf = appendRecord(buf, recTombstone, tb.seq, tb.id, tb.name, tb.fp, nil)
		tb.bytes = int64(len(buf)) - start
		sh.tombs[name] = tb
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		if IsDiskFull(err) {
			s.diskFull()
		}
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	if err := os.Rename(tmp.Name(), sh.path); err != nil {
		return
	}
	f, err := os.OpenFile(sh.path, os.O_RDWR, 0o644)
	if err != nil {
		// The rename landed but the reopen failed: the shard is now
		// unreadable until the next Open. Keep the old handle closed.
		sh.file.Close()
		sh.file = nil
		return
	}
	sh.file.Close()
	sh.file = f
	sh.size = int64(len(buf))
	sh.garbage = 0
	sh.live = int64(len(buf)) - int64(len(segHeader))
	for _, mv := range moves {
		*mv.which = mv.to
	}
	s.compactions.Add(1)
	s.tel.StoreCompaction()
}

// Stats is a point-in-time health snapshot, for tests and debugging.
type Stats struct {
	// Entries is the live project count; MissingResults how many of them
	// have no durably readable result right now.
	Entries        int
	MissingResults int
	HotEntries     int
	HotBytes       int64
	Evictions      int64
	Quarantined    int64
	Compactions    int64
	FlushErrors    int64
	GarbageBytes   int64
	LiveBytes      int64
	// ReadOnly is the current mode; ReadOnlyEvents and DiskFullEvents
	// count transitions into it and ENOSPC incidents respectively.
	ReadOnly       bool
	ReadOnlyEvents int64
	DiskFullEvents int64
	// ScrubPasses and Repairs summarize the background scrubber.
	ScrubPasses int64
	Repairs     int64
}

// StatsSnapshot gathers Stats across all shards.
func (s *Store) StatsSnapshot() Stats {
	var st Stats
	st.HotEntries, st.HotBytes, st.Evictions = s.hot.stats()
	st.Quarantined = s.quarantined.Load()
	st.Compactions = s.compactions.Load()
	st.FlushErrors = s.flushErrors.Load()
	st.ReadOnly = s.readOnly.Load()
	st.ReadOnlyEvents = s.roEvents.Load()
	st.DiskFullEvents = s.diskFulls.Load()
	st.ScrubPasses = s.scrubPasses.Load()
	st.Repairs = s.repairs.Load()
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Entries += len(sh.byID)
		for id, m := range sh.byID {
			if sh.file != nil {
				if !m.res.ok() {
					st.MissingResults++
				}
			} else if _, ok := s.hot.get(id); !ok {
				st.MissingResults++
			}
		}
		st.GarbageBytes += sh.garbage
		st.LiveBytes += sh.live
		sh.mu.Unlock()
	}
	return st
}
