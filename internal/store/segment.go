package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
)

// Segment files are append-friendly logs of framed records. Every record
// is independently integrity-checked and self-describing, so recovery
// needs no index, no manifest and no trailing commit marker: a scan walks
// the file, verifies each frame's CRC-32C (Castagnoli, the same polynomial
// the pipeline's disk cache seals entries with), and resynchronizes on the
// next frame magic after any damage. A torn tail, a truncated file, or a
// bit flip therefore costs exactly the damaged records — everything before
// and after (appends land at the physical EOF, past any garbage) is
// served normally.
//
// Frame layout (all integers little-endian):
//
//	offset 0  magic "SEVR"
//	       4  kind (1 = source snapshot, 2 = result, 3 = tombstone)
//	       5  seq  (uint64; store-wide monotone, orders records across shards)
//	      13  header length (uint32)
//	      17  body length (uint32)
//	      21  header: len-prefixed id, name, fingerprint (uint32 prefixes)
//	       …  body: pipeline.EncodeRepo / pipeline.EncodeResult bytes (empty
//	          for tombstones)
//	       …  CRC-32C over bytes [4, 21+header+body)
//
// The header carries everything recovery needs to rebuild the in-memory
// index (id, name, fingerprint, liveness order via seq) without decoding
// bodies, which keeps a warm restart proportional to metadata, not data.

// segHeader opens every shard segment file.
const segHeader = "SEVSEG1\n"

// recMagic frames every record.
var recMagic = [4]byte{'S', 'E', 'V', 'R'}

// Record kinds.
const (
	recSource    byte = 1
	recResult    byte = 2
	recTombstone byte = 3
)

// recFixed is the fixed-size frame prefix: magic + kind + seq + two
// lengths.
const recFixed = 4 + 1 + 8 + 4 + 4

// crcTable is the Castagnoli table shared by all record checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// rec is one good record located during a segment scan, or assembled for
// an append.
type rec struct {
	kind             byte
	seq              uint64
	id, name, fp     string
	start, total     int64 // whole-frame span within the file
	bodyOff, bodyLen int64 // body span within the file
}

func le32(buf []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(buf, b[:]...)
}

func le64(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(buf, b[:]...)
}

// appendRecord frames one record onto buf and returns the grown buffer.
func appendRecord(buf []byte, kind byte, seq uint64, id, name, fp string, body []byte) []byte {
	start := len(buf)
	hdrLen := 12 + len(id) + len(name) + len(fp)
	buf = append(buf, recMagic[:]...)
	buf = append(buf, kind)
	buf = le64(buf, seq)
	buf = le32(buf, uint32(hdrLen))
	buf = le32(buf, uint32(len(body)))
	buf = le32(buf, uint32(len(id)))
	buf = append(buf, id...)
	buf = le32(buf, uint32(len(name)))
	buf = append(buf, name...)
	buf = le32(buf, uint32(len(fp)))
	buf = append(buf, fp...)
	buf = append(buf, body...)
	return le32(buf, crc32.Checksum(buf[start+4:], crcTable))
}

// recordSize returns the framed size of a record with the given header
// strings and body length.
func recordSize(id, name, fp string, bodyLen int) int64 {
	return int64(recFixed + 12 + len(id) + len(name) + len(fp) + bodyLen + 4)
}

// parseHeader decodes the three length-prefixed header strings, reporting
// ok only when they consume the header exactly.
func parseHeader(hdr []byte) (id, name, fp string, ok bool) {
	next := func() (string, bool) {
		if len(hdr) < 4 {
			return "", false
		}
		n := int(binary.LittleEndian.Uint32(hdr))
		hdr = hdr[4:]
		if n < 0 || n > len(hdr) {
			return "", false
		}
		s := string(hdr[:n])
		hdr = hdr[n:]
		return s, true
	}
	if id, ok = next(); !ok {
		return
	}
	if name, ok = next(); !ok {
		return
	}
	if fp, ok = next(); !ok {
		return
	}
	return id, name, fp, len(hdr) == 0
}

// scanRecords walks segment bytes (past the file header), returning every
// intact record and the number of damaged ones skipped. base is the file
// offset of data[0], so returned spans address the file directly. On any
// damage — bad magic, impossible lengths, CRC mismatch, malformed header,
// torn tail — the scan counts one quarantined record and resynchronizes at
// the next frame magic.
func scanRecords(data []byte, base int64) (out []rec, quarantined int) {
	resync := func(from int) int {
		i := bytes.Index(data[from:], recMagic[:])
		if i < 0 {
			return len(data)
		}
		return from + i
	}
	off := 0
	for off < len(data) {
		if len(data)-off < recFixed || !bytes.Equal(data[off:off+4], recMagic[:]) {
			quarantined++
			off = resync(off + 1)
			continue
		}
		kind := data[off+4]
		seq := binary.LittleEndian.Uint64(data[off+5:])
		hdrLen := int64(binary.LittleEndian.Uint32(data[off+13:]))
		bodyLen := int64(binary.LittleEndian.Uint32(data[off+17:]))
		total := int64(recFixed) + hdrLen + bodyLen + 4
		if int64(off)+total > int64(len(data)) {
			quarantined++
			off = resync(off + 1)
			continue
		}
		end := off + int(total)
		want := binary.LittleEndian.Uint32(data[end-4:])
		if crc32.Checksum(data[off+4:end-4], crcTable) != want {
			quarantined++
			off = resync(off + 1)
			continue
		}
		id, name, fp, ok := parseHeader(data[off+recFixed : off+recFixed+int(hdrLen)])
		if !ok || (kind != recSource && kind != recResult && kind != recTombstone) {
			quarantined++
			off = resync(off + 1)
			continue
		}
		out = append(out, rec{
			kind: kind, seq: seq, id: id, name: name, fp: fp,
			start: base + int64(off), total: total,
			bodyOff: base + int64(off+recFixed) + hdrLen, bodyLen: bodyLen,
		})
		off = end
	}
	return out, quarantined
}
