--
-- PostgreSQL database dump (two months later: audit events, tags on projects)
--

SET statement_timeout = 0;
SET client_encoding = 'UTF8';
SET search_path = public, pg_catalog;

CREATE TABLE public.accounts (
    id integer NOT NULL,
    email character varying(255) NOT NULL,
    encrypted_password character varying(128) DEFAULT ''::character varying NOT NULL,
    created_at timestamp without time zone,
    updated_at timestamp without time zone
);

ALTER TABLE ONLY public.accounts
    ADD CONSTRAINT accounts_pkey PRIMARY KEY (id);

CREATE TABLE public.projects (
    id serial,
    account_id integer NOT NULL,
    name text NOT NULL,
    settings jsonb DEFAULT '{}'::jsonb,
    archived boolean DEFAULT false NOT NULL,
    tags text[]
);

ALTER TABLE ONLY public.projects
    ADD CONSTRAINT projects_pkey PRIMARY KEY (id);

ALTER TABLE ONLY public.projects
    ADD CONSTRAINT fk_projects_account FOREIGN KEY (account_id) REFERENCES public.accounts(id) ON DELETE CASCADE;

CREATE TABLE public.audit_events (
    id bigserial,
    account_id integer,
    action character varying(60) NOT NULL,
    payload jsonb,
    happened_at timestamp with time zone DEFAULT now() NOT NULL
);

ALTER TABLE ONLY public.audit_events
    ADD CONSTRAINT audit_events_pkey PRIMARY KEY (id);

CREATE INDEX index_audit_on_account ON public.audit_events USING btree (account_id);
