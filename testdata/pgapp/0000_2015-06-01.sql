--
-- PostgreSQL database dump
--

SET statement_timeout = 0;
SET client_encoding = 'UTF8';
SET standard_conforming_strings = on;
SET search_path = public, pg_catalog;

CREATE TABLE public.accounts (
    id integer NOT NULL,
    email character varying(255) NOT NULL,
    encrypted_password character varying(128) DEFAULT ''::character varying NOT NULL,
    created_at timestamp without time zone,
    updated_at timestamp without time zone
);

CREATE SEQUENCE public.accounts_id_seq
    START WITH 1
    INCREMENT BY 1
    NO MINVALUE
    NO MAXVALUE
    CACHE 1;

ALTER TABLE ONLY public.accounts
    ADD CONSTRAINT accounts_pkey PRIMARY KEY (id);

CREATE TABLE public.projects (
    id serial,
    account_id integer NOT NULL,
    name text NOT NULL,
    settings jsonb DEFAULT '{}'::jsonb,
    archived boolean DEFAULT false NOT NULL
);

ALTER TABLE ONLY public.projects
    ADD CONSTRAINT projects_pkey PRIMARY KEY (id);

ALTER TABLE ONLY public.projects
    ADD CONSTRAINT fk_projects_account FOREIGN KEY (account_id) REFERENCES public.accounts(id) ON DELETE CASCADE;

CREATE UNIQUE INDEX index_accounts_on_email ON public.accounts USING btree (email);

COMMENT ON TABLE public.accounts IS 'registered users';
