-- v0.3: taxonomy tables; wp_posts.post_status becomes an index-friendly type
SET NAMES utf8;

DROP TABLE IF EXISTS `wp_posts`;
CREATE TABLE `wp_posts` (
  `ID` bigint(20) unsigned NOT NULL auto_increment,
  `post_author` bigint(20) unsigned NOT NULL default '0',
  `post_date` datetime NOT NULL default '0000-00-00 00:00:00',
  `post_content` longtext NOT NULL,
  `post_title` text NOT NULL,
  `post_excerpt` text NOT NULL,
  `post_status` enum('publish','draft','private') NOT NULL default 'publish',
  PRIMARY KEY (`ID`),
  KEY `post_author` (`post_author`)
) ENGINE=MyISAM DEFAULT CHARSET=utf8;

DROP TABLE IF EXISTS `wp_users`;
CREATE TABLE `wp_users` (
  `ID` bigint(20) unsigned NOT NULL auto_increment,
  `user_login` varchar(60) NOT NULL default '',
  `user_pass` varchar(64) NOT NULL default '',
  `user_email` varchar(100) NOT NULL default '',
  `user_registered` datetime NOT NULL default '0000-00-00 00:00:00',
  PRIMARY KEY (`ID`),
  KEY `user_login_key` (`user_login`)
) ENGINE=MyISAM DEFAULT CHARSET=utf8;

DROP TABLE IF EXISTS `wp_comments`;
CREATE TABLE `wp_comments` (
  `comment_ID` bigint(20) unsigned NOT NULL auto_increment,
  `comment_post_ID` bigint(20) unsigned NOT NULL default '0',
  `comment_author` tinytext NOT NULL,
  `comment_content` text NOT NULL,
  `comment_approved` varchar(20) NOT NULL default '1',
  PRIMARY KEY (`comment_ID`),
  KEY `comment_post_ID` (`comment_post_ID`)
) ENGINE=MyISAM DEFAULT CHARSET=utf8;

DROP TABLE IF EXISTS `wp_terms`;
CREATE TABLE `wp_terms` (
  `term_id` bigint(20) unsigned NOT NULL auto_increment,
  `name` varchar(200) NOT NULL default '',
  `slug` varchar(200) NOT NULL default '',
  PRIMARY KEY (`term_id`),
  UNIQUE KEY `slug` (`slug`)
) ENGINE=MyISAM DEFAULT CHARSET=utf8;

DROP TABLE IF EXISTS `wp_term_relationships`;
CREATE TABLE `wp_term_relationships` (
  `object_id` bigint(20) unsigned NOT NULL default '0',
  `term_id` bigint(20) unsigned NOT NULL default '0',
  PRIMARY KEY (`object_id`, `term_id`)
) ENGINE=MyISAM DEFAULT CHARSET=utf8;
