-- MySQL dump fragment, blog engine v0.1
SET NAMES utf8;
SET FOREIGN_KEY_CHECKS = 0;

DROP TABLE IF EXISTS `wp_posts`;
CREATE TABLE `wp_posts` (
  `ID` bigint(20) unsigned NOT NULL auto_increment,
  `post_author` bigint(20) unsigned NOT NULL default '0',
  `post_date` datetime NOT NULL default '0000-00-00 00:00:00',
  `post_content` longtext NOT NULL,
  `post_title` text NOT NULL,
  `post_status` varchar(20) NOT NULL default 'publish',
  PRIMARY KEY (`ID`),
  KEY `post_author` (`post_author`),
  KEY `type_status_date` (`post_status`, `post_date`, `ID`)
) ENGINE=MyISAM DEFAULT CHARSET=utf8;

DROP TABLE IF EXISTS `wp_users`;
CREATE TABLE `wp_users` (
  `ID` bigint(20) unsigned NOT NULL auto_increment,
  `user_login` varchar(60) NOT NULL default '',
  `user_pass` varchar(64) NOT NULL default '',
  `user_email` varchar(100) NOT NULL default '',
  `user_registered` datetime NOT NULL default '0000-00-00 00:00:00',
  PRIMARY KEY (`ID`),
  KEY `user_login_key` (`user_login`)
) ENGINE=MyISAM DEFAULT CHARSET=utf8;

INSERT INTO `wp_users` VALUES (1, 'admin', 'x', 'admin@example.org', NOW());
