-- Dialect-neutral history in migration-script style: each version
-- appends ALTER/CREATE statements to the previous file content.
CREATE TABLE products (
  id INTEGER NOT NULL,
  sku CHAR(12) NOT NULL,
  name VARCHAR(160) NOT NULL,
  price NUMERIC(10, 2) NOT NULL DEFAULT 0.00,
  PRIMARY KEY (id),
  UNIQUE (sku)
);

CREATE TABLE orders (
  id INTEGER NOT NULL,
  product_id INTEGER NOT NULL,
  quantity INTEGER NOT NULL DEFAULT 1,
  placed_at TIMESTAMP,
  PRIMARY KEY (id),
  CONSTRAINT fk_orders_product FOREIGN KEY (product_id) REFERENCES products (id)
);
-- @version
CREATE TABLE products (
  id INTEGER NOT NULL,
  sku CHAR(12) NOT NULL,
  name VARCHAR(160) NOT NULL,
  price NUMERIC(10, 2) NOT NULL DEFAULT 0.00,
  PRIMARY KEY (id),
  UNIQUE (sku)
);

CREATE TABLE orders (
  id INTEGER NOT NULL,
  product_id INTEGER NOT NULL,
  quantity INTEGER NOT NULL DEFAULT 1,
  placed_at TIMESTAMP,
  PRIMARY KEY (id),
  CONSTRAINT fk_orders_product FOREIGN KEY (product_id) REFERENCES products (id)
);

ALTER TABLE products ADD COLUMN weight_grams INTEGER;
ALTER TABLE orders ADD COLUMN status VARCHAR(20) NOT NULL DEFAULT 'new';
-- @version
CREATE TABLE products (
  id INTEGER NOT NULL,
  sku CHAR(12) NOT NULL,
  name VARCHAR(160) NOT NULL,
  price NUMERIC(10, 2) NOT NULL DEFAULT 0.00,
  PRIMARY KEY (id),
  UNIQUE (sku)
);

CREATE TABLE orders (
  id INTEGER NOT NULL,
  product_id INTEGER NOT NULL,
  quantity INTEGER NOT NULL DEFAULT 1,
  placed_at TIMESTAMP,
  PRIMARY KEY (id),
  CONSTRAINT fk_orders_product FOREIGN KEY (product_id) REFERENCES products (id)
);

ALTER TABLE products ADD COLUMN weight_grams INTEGER;
ALTER TABLE orders ADD COLUMN status VARCHAR(20) NOT NULL DEFAULT 'new';

CREATE TABLE shipments (
  id INTEGER NOT NULL,
  order_id INTEGER NOT NULL,
  carrier VARCHAR(40),
  shipped_on DATE,
  PRIMARY KEY (id),
  FOREIGN KEY (order_id) REFERENCES orders (id)
);

ALTER TABLE products DROP COLUMN weight_grams;
ALTER TABLE orders ALTER COLUMN quantity SET DEFAULT 0;
-- @version
CREATE TABLE products (
  id INTEGER NOT NULL,
  sku CHAR(12) NOT NULL,
  name VARCHAR(160) NOT NULL,
  price NUMERIC(10, 2) NOT NULL DEFAULT 0.00,
  PRIMARY KEY (id),
  UNIQUE (sku)
);

CREATE TABLE orders (
  id INTEGER NOT NULL,
  product_id INTEGER NOT NULL,
  quantity INTEGER NOT NULL DEFAULT 1,
  placed_at TIMESTAMP,
  PRIMARY KEY (id),
  CONSTRAINT fk_orders_product FOREIGN KEY (product_id) REFERENCES products (id)
);

ALTER TABLE products ADD COLUMN weight_grams INTEGER;
ALTER TABLE orders ADD COLUMN status VARCHAR(20) NOT NULL DEFAULT 'new';

CREATE TABLE shipments (
  id INTEGER NOT NULL,
  order_id INTEGER NOT NULL,
  carrier VARCHAR(40),
  shipped_on DATE,
  PRIMARY KEY (id),
  FOREIGN KEY (order_id) REFERENCES orders (id)
);

ALTER TABLE products DROP COLUMN weight_grams;
ALTER TABLE orders ALTER COLUMN quantity SET DEFAULT 0;

ALTER TABLE shipments ADD COLUMN tracking_code VARCHAR(64);
ALTER TABLE shipments RENAME COLUMN carrier TO carrier_name;
ALTER TABLE orders ADD CONSTRAINT chk_quantity CHECK (quantity >= 0);
