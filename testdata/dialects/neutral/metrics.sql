-- Dialect-neutral history exercising numeric type spellings, NOT NULL
-- promotion, default changes and composite keys.
CREATE TABLE samples (
  series_id INTEGER NOT NULL,
  at TIMESTAMP NOT NULL,
  value DOUBLE PRECISION,
  PRIMARY KEY (series_id, at)
);

CREATE TABLE series (
  id INTEGER NOT NULL,
  name VARCHAR(120) NOT NULL,
  unit VARCHAR(16) DEFAULT 'count',
  PRIMARY KEY (id),
  UNIQUE (name)
);
-- @version
CREATE TABLE samples (
  series_id INTEGER NOT NULL,
  at TIMESTAMP NOT NULL,
  value DOUBLE PRECISION NOT NULL,
  quality SMALLINT DEFAULT 100,
  PRIMARY KEY (series_id, at)
);

CREATE TABLE series (
  id INTEGER NOT NULL,
  name VARCHAR(120) NOT NULL,
  unit VARCHAR(16) DEFAULT 'count',
  description TEXT,
  PRIMARY KEY (id),
  UNIQUE (name)
);
-- @version
CREATE TABLE samples (
  series_id INTEGER NOT NULL,
  at TIMESTAMP NOT NULL,
  value REAL NOT NULL,
  quality SMALLINT DEFAULT 100,
  PRIMARY KEY (series_id, at)
);

CREATE TABLE series (
  id INTEGER NOT NULL,
  name VARCHAR(120) NOT NULL,
  unit VARCHAR(16) DEFAULT 'count',
  description TEXT,
  retention_days INTEGER NOT NULL DEFAULT -1,
  PRIMARY KEY (id),
  UNIQUE (name)
);

CREATE TABLE annotations (
  id INTEGER NOT NULL,
  series_id INTEGER NOT NULL,
  at TIMESTAMP NOT NULL,
  note VARCHAR(255) NOT NULL DEFAULT '',
  PRIMARY KEY (id),
  FOREIGN KEY (series_id) REFERENCES series (id)
);
