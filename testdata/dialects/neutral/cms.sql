/* Dialect-neutral history exercising quoted identifiers, views,
   type changes, table drops and multi-action ALTERs. */
CREATE TABLE "Pages" (
  id INTEGER NOT NULL,
  "Title" VARCHAR(150) NOT NULL,
  body TEXT,
  PRIMARY KEY (id)
);

CREATE TABLE assets (
  id INTEGER NOT NULL,
  page_id INTEGER,
  path VARCHAR(255) NOT NULL,
  bytes BIGINT,
  PRIMARY KEY (id),
  FOREIGN KEY (page_id) REFERENCES "Pages" (id)
);

CREATE VIEW page_titles AS SELECT id, "Title" FROM "Pages";
-- @version
CREATE TABLE "Pages" (
  id INTEGER NOT NULL,
  "Title" VARCHAR(150) NOT NULL,
  body TEXT,
  revision INTEGER NOT NULL DEFAULT 1,
  PRIMARY KEY (id)
);

CREATE TABLE assets (
  id INTEGER NOT NULL,
  page_id INTEGER,
  path VARCHAR(255) NOT NULL,
  bytes BIGINT,
  checksum CHAR(40),
  PRIMARY KEY (id),
  FOREIGN KEY (page_id) REFERENCES "Pages" (id)
);

CREATE TABLE drafts (
  id INTEGER NOT NULL,
  page_id INTEGER NOT NULL,
  body TEXT,
  PRIMARY KEY (id)
);

CREATE VIEW page_titles AS SELECT id, "Title" FROM "Pages";
-- @version
CREATE TABLE "Pages" (
  id INTEGER NOT NULL,
  "Title" VARCHAR(150) NOT NULL,
  body TEXT,
  revision BIGINT NOT NULL DEFAULT 1,
  PRIMARY KEY (id)
);

CREATE TABLE assets (
  id INTEGER NOT NULL,
  page_id INTEGER,
  path VARCHAR(255) NOT NULL,
  bytes BIGINT,
  checksum CHAR(40),
  PRIMARY KEY (id),
  FOREIGN KEY (page_id) REFERENCES "Pages" (id)
);

CREATE VIEW page_titles AS SELECT id, "Title" FROM "Pages";

ALTER TABLE assets ADD COLUMN mime VARCHAR(60), ADD COLUMN width INTEGER;
