-- Dialect-neutral history: a small blog schema growing over four
-- versions. Uses only syntax every supported dialect accepts, so all
-- adapters must analyze it byte-identically (differential harness).
CREATE TABLE users (
  id INTEGER NOT NULL,
  email VARCHAR(255) NOT NULL,
  created_at TIMESTAMP,
  PRIMARY KEY (id)
);

CREATE TABLE posts (
  id INTEGER NOT NULL,
  author_id INTEGER NOT NULL,
  title VARCHAR(200) NOT NULL,
  body TEXT,
  PRIMARY KEY (id),
  FOREIGN KEY (author_id) REFERENCES users (id)
);
-- @version
CREATE TABLE users (
  id INTEGER NOT NULL,
  email VARCHAR(255) NOT NULL,
  display_name VARCHAR(80),
  created_at TIMESTAMP,
  PRIMARY KEY (id)
);

CREATE TABLE posts (
  id INTEGER NOT NULL,
  author_id INTEGER NOT NULL,
  title VARCHAR(200) NOT NULL,
  body TEXT,
  published SMALLINT NOT NULL DEFAULT 0,
  PRIMARY KEY (id),
  FOREIGN KEY (author_id) REFERENCES users (id)
);

CREATE TABLE comments (
  id INTEGER NOT NULL,
  post_id INTEGER NOT NULL,
  body TEXT NOT NULL,
  PRIMARY KEY (id),
  FOREIGN KEY (post_id) REFERENCES posts (id)
);
-- @version
CREATE TABLE users (
  id INTEGER NOT NULL,
  email VARCHAR(255) NOT NULL,
  display_name VARCHAR(120),
  created_at TIMESTAMP,
  PRIMARY KEY (id)
);

CREATE TABLE posts (
  id INTEGER NOT NULL,
  author_id INTEGER NOT NULL,
  title VARCHAR(200) NOT NULL,
  body TEXT,
  published SMALLINT NOT NULL DEFAULT 0,
  slug VARCHAR(200),
  PRIMARY KEY (id),
  FOREIGN KEY (author_id) REFERENCES users (id)
);

CREATE TABLE comments (
  id INTEGER NOT NULL,
  post_id INTEGER NOT NULL,
  author_email VARCHAR(255),
  body TEXT NOT NULL,
  PRIMARY KEY (id),
  FOREIGN KEY (post_id) REFERENCES posts (id)
);

CREATE INDEX idx_posts_slug ON posts (slug);
-- @version
CREATE TABLE users (
  id INTEGER NOT NULL,
  email VARCHAR(255) NOT NULL,
  display_name VARCHAR(120),
  created_at TIMESTAMP,
  PRIMARY KEY (id)
);

CREATE TABLE posts (
  id INTEGER NOT NULL,
  author_id INTEGER NOT NULL,
  title VARCHAR(200) NOT NULL,
  body TEXT,
  published SMALLINT NOT NULL DEFAULT 0,
  slug VARCHAR(200),
  view_count BIGINT NOT NULL DEFAULT 0,
  PRIMARY KEY (id),
  FOREIGN KEY (author_id) REFERENCES users (id)
);

CREATE INDEX idx_posts_slug ON posts (slug);
