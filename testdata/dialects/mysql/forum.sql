# Forum schema dump, mysqldump style.
# Host: localhost    Database: forum
SET NAMES utf8mb4;

DROP TABLE IF EXISTS `users`;
CREATE TABLE `users` (
  `id` int(10) unsigned NOT NULL AUTO_INCREMENT,
  `login` varchar(60) NOT NULL DEFAULT '',
  `email` varchar(100) NOT NULL,
  `status` enum('active','banned','ghost') NOT NULL DEFAULT 'active',
  `signature` mediumtext,
  `registered_at` datetime NOT NULL,
  PRIMARY KEY (`id`),
  UNIQUE KEY `login` (`login`),
  KEY `idx_email` (`email`)
) ENGINE=InnoDB AUTO_INCREMENT=1001 DEFAULT CHARSET=utf8mb4;

DROP TABLE IF EXISTS `topics`;
CREATE TABLE `topics` (
  `id` int(10) unsigned NOT NULL AUTO_INCREMENT,
  `forum_id` smallint(5) unsigned NOT NULL DEFAULT 1,
  `subject` varchar(255) NOT NULL,
  `num_replies` mediumint(8) unsigned NOT NULL DEFAULT 0,
  `last_post` timestamp NOT NULL DEFAULT CURRENT_TIMESTAMP ON UPDATE CURRENT_TIMESTAMP,
  `sticky` tinyint(1) NOT NULL DEFAULT 0,
  PRIMARY KEY (`id`),
  KEY `idx_forum` (`forum_id`, `last_post`)
) ENGINE=MyISAM DEFAULT CHARSET=utf8mb4;

CREATE TABLE `posts` (
  `id` bigint(20) unsigned NOT NULL AUTO_INCREMENT,
  `topic_id` int(10) unsigned NOT NULL,
  `poster_id` int(10) unsigned NOT NULL,
  `message` longtext NOT NULL,
  `posted` datetime NOT NULL,
  `edited` datetime DEFAULT NULL,
  PRIMARY KEY (`id`),
  KEY `idx_topic` (`topic_id`),
  CONSTRAINT `fk_posts_topic` FOREIGN KEY (`topic_id`) REFERENCES `topics` (`id`) ON DELETE CASCADE
) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4;

ALTER TABLE `users` ADD COLUMN `karma` int(11) NOT NULL DEFAULT 0 AFTER `status`;
ALTER TABLE `posts` ADD FULLTEXT KEY `ft_message` (`message`);
