# Inventory tracking, hand-written migration file.
CREATE TABLE `warehouses` (
  `id` smallint unsigned NOT NULL AUTO_INCREMENT,
  `code` char(4) NOT NULL,
  `region` varchar(40) NOT NULL DEFAULT 'EU',
  PRIMARY KEY (`id`),
  UNIQUE KEY `uq_code` (`code`)
) ENGINE=InnoDB;

CREATE TABLE `items` (
  `id` bigint unsigned NOT NULL AUTO_INCREMENT,
  `warehouse_id` smallint unsigned NOT NULL,
  `sku` varchar(32) NOT NULL,
  `qty` int NOT NULL DEFAULT 0,
  `unit_price` decimal(12,4) NOT NULL DEFAULT 0.0000,
  `flags` set('fragile','bulky','cold') DEFAULT NULL,
  `updated_at` timestamp NOT NULL DEFAULT CURRENT_TIMESTAMP,
  PRIMARY KEY (`id`),
  KEY `idx_wh_sku` (`warehouse_id`, `sku`(8)),
  CONSTRAINT `fk_items_wh` FOREIGN KEY (`warehouse_id`) REFERENCES `warehouses` (`id`)
) ENGINE=InnoDB ROW_FORMAT=DYNAMIC;

ALTER TABLE `items` MODIFY COLUMN `qty` bigint NOT NULL DEFAULT 0;
ALTER TABLE `items` ADD `reserved` int unsigned NOT NULL DEFAULT 0, ADD `lot` varchar(16) DEFAULT NULL;
ALTER TABLE `items` CHANGE COLUMN `flags` `handling_flags` set('fragile','bulky','cold') DEFAULT NULL;
