# Event analytics rollups.
CREATE TABLE `events` (
  `id` bigint unsigned NOT NULL AUTO_INCREMENT,
  `kind` varchar(48) NOT NULL,
  `payload` json DEFAULT NULL,
  `client_ip` int unsigned zerofill DEFAULT NULL,
  `happened` datetime(6) NOT NULL,
  PRIMARY KEY (`id`),
  KEY `idx_kind_time` (`kind`, `happened`)
) ENGINE=InnoDB DEFAULT CHARSET=utf8mb4 COLLATE=utf8mb4_unicode_ci;

CREATE TABLE `rollups_daily` (
  `day` date NOT NULL,
  `kind` varchar(48) NOT NULL,
  `hits` bigint unsigned NOT NULL DEFAULT 0,
  `uniques` int unsigned NOT NULL DEFAULT 0,
  PRIMARY KEY (`day`, `kind`)
) ENGINE=InnoDB;

ALTER TABLE `rollups_daily` ADD COLUMN `p95_ms` float DEFAULT NULL;
ALTER TABLE `events` ADD INDEX `idx_payload_kind` (`kind`);
CREATE INDEX `idx_day` ON `rollups_daily` (`day`);
