--
-- Issue tracker schema, pg_dump style.
--
SET statement_timeout = 0;
SET client_encoding = 'UTF8';

CREATE TABLE public.projects (
    id integer NOT NULL,
    slug character varying(64) NOT NULL,
    name text NOT NULL,
    settings jsonb DEFAULT '{}'::jsonb NOT NULL,
    created_at timestamptz DEFAULT now() NOT NULL
);

CREATE SEQUENCE public.projects_id_seq START WITH 1 INCREMENT BY 1;

ALTER TABLE ONLY public.projects ALTER COLUMN id SET DEFAULT nextval('public.projects_id_seq'::regclass);

CREATE TABLE public.issues (
    id bigserial NOT NULL,
    project_id integer NOT NULL,
    title character varying(255) NOT NULL,
    state character varying(20) DEFAULT 'open'::character varying NOT NULL,
    labels text[] DEFAULT '{}'::text[],
    opened_at timestamp with time zone DEFAULT now(),
    closed_at timestamp with time zone
);

ALTER TABLE ONLY public.projects ADD CONSTRAINT projects_pkey PRIMARY KEY (id);
ALTER TABLE ONLY public.projects ADD CONSTRAINT projects_slug_key UNIQUE (slug);
ALTER TABLE ONLY public.issues ADD CONSTRAINT issues_pkey PRIMARY KEY (id);
ALTER TABLE ONLY public.issues
    ADD CONSTRAINT issues_project_fkey FOREIGN KEY (project_id) REFERENCES public.projects(id) ON DELETE CASCADE;

CREATE INDEX idx_issues_state ON public.issues USING btree (project_id, state);
