-- Geodata tables exercising arrays, inheritance and tablespaces.
CREATE TABLE regions (
    id smallserial NOT NULL,
    code inet,
    name character varying(80) NOT NULL,
    bbox box,
    tags text[] NOT NULL DEFAULT '{}'::text[],
    PRIMARY KEY (id)
);

CREATE TABLE cities (
    population int8 DEFAULT 0::int8,
    location point
) INHERITS (regions);

CREATE INDEX idx_regions_tags ON regions USING gin (tags);

ALTER TABLE cities ADD COLUMN founded date DEFAULT '1900-01-01'::date;
ALTER TABLE ONLY regions ADD CONSTRAINT regions_name_key UNIQUE (name);
COMMENT ON TABLE regions IS 'admin areas';
