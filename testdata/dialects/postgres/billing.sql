-- Billing schema with identity columns, enums-as-checks and a trigger fn.
CREATE TABLE accounts (
    id serial PRIMARY KEY,
    uuid uuid NOT NULL,
    email text NOT NULL UNIQUE,
    balance_cents bigint NOT NULL DEFAULT 0,
    currency char(3) NOT NULL DEFAULT 'EUR'::bpchar,
    meta jsonb NOT NULL DEFAULT '{}'::jsonb
);

CREATE TABLE invoices (
    id bigserial PRIMARY KEY,
    account_id integer NOT NULL REFERENCES accounts (id) ON DELETE RESTRICT,
    total numeric(14,2) NOT NULL DEFAULT 0.00,
    state text NOT NULL DEFAULT 'draft'::text,
    issued_on date,
    blob_ref bytea,
    CONSTRAINT chk_state CHECK (state IN ('draft', 'sent', 'paid', 'void'))
);

CREATE OR REPLACE FUNCTION touch_invoice() RETURNS trigger AS $$
BEGIN
  NEW.updated_at := now();
  RETURN NEW;
END;
$$ LANGUAGE plpgsql;

ALTER TABLE invoices ADD COLUMN updated_at timestamptz NOT NULL DEFAULT now();
ALTER TABLE invoices ALTER COLUMN total TYPE numeric(16,2);
ALTER TABLE accounts ALTER COLUMN email SET NOT NULL;
