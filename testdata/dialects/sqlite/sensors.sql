-- Sensor log with rowid tricks and loose typing.
PRAGMA journal_mode = WAL;

CREATE TABLE readings (
  sensor_id INTEGER NOT NULL,
  ts INTEGER NOT NULL,
  celsius REAL,
  raw,
  PRIMARY KEY (sensor_id, ts)
) WITHOUT ROWID;

CREATE TABLE sensors (
  id INTEGER PRIMARY KEY AUTOINCREMENT,
  `label` TEXT NOT NULL DEFAULT 'unnamed',
  kind TEXT CHECK (kind IN ('temp', 'hum', 'lux')),
  installed_at DATETIME
);

CREATE TABLE sqlite_sequence_shadow (
  name TEXT,
  seq INTEGER
);

ALTER TABLE sensors ADD COLUMN calibration NUMERIC DEFAULT 1.0;
CREATE INDEX idx_readings_ts ON readings (ts);
