-- Media player library database.
CREATE TABLE [albums] (
  [AlbumId] INTEGER PRIMARY KEY AUTOINCREMENT,
  [Title] NVARCHAR(160) NOT NULL,
  [ArtistId] INTEGER NOT NULL
);

CREATE TABLE [tracks] (
  [TrackId] INTEGER PRIMARY KEY,
  [Name] NVARCHAR(200) NOT NULL,
  [AlbumId] INTEGER,
  [Milliseconds] INTEGER NOT NULL,
  [Bytes] INTEGER,
  [UnitPrice] NUMERIC(10,2) NOT NULL,
  FOREIGN KEY ([AlbumId]) REFERENCES [albums] ([AlbumId])
);

CREATE TABLE playlists (
  id INTEGER PRIMARY KEY,
  name,
  sort_order DEFAULT 0
);

CREATE INDEX [IFK_TrackAlbumId] ON [tracks] ([AlbumId]);
ALTER TABLE playlists ADD COLUMN icon BLOB;
