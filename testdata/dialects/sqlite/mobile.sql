-- Mobile app local store, sqlite3 .schema style.
PRAGMA foreign_keys = ON;

CREATE TABLE IF NOT EXISTS meta (
  "key" TEXT PRIMARY KEY,
  value
);

CREATE TABLE notes (
  id INTEGER PRIMARY KEY AUTOINCREMENT,
  title TEXT NOT NULL DEFAULT '',
  body TEXT,
  starred BOOLEAN NOT NULL DEFAULT 0,
  created_at DATETIME DEFAULT CURRENT_TIMESTAMP
);

CREATE TABLE tags (
  id INTEGER PRIMARY KEY,
  name TEXT NOT NULL UNIQUE
) WITHOUT ROWID;

CREATE TABLE note_tags (
  note_id INTEGER NOT NULL REFERENCES notes (id) ON DELETE CASCADE,
  tag_id INTEGER NOT NULL REFERENCES tags (id),
  PRIMARY KEY (note_id, tag_id)
) WITHOUT ROWID;

CREATE INDEX idx_notes_created ON notes (created_at DESC);
