package schemaevo

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"schemaevo/internal/gitrepo"
)

// TestGitAndDirExtractorsAgree feeds the same schema history through both
// extraction paths — a git repository and a dated snapshot directory —
// and requires identical measures and classification. This pins the two
// real-world entry points to each other.
func TestGitAndDirExtractorsAgree(t *testing.T) {
	if !gitrepo.Available() {
		t.Skip("git binary not available")
	}
	// The golden wordpressish corpus: snapshot files named
	// NNNN_YYYY-MM-DD.sql.
	entries, err := os.ReadDir("testdata/wordpressish")
	if err != nil {
		t.Fatal(err)
	}

	gitDir := t.TempDir()
	git := func(env []string, args ...string) {
		t.Helper()
		cmd := exec.Command("git", append([]string{"-C", gitDir}, args...)...)
		cmd.Env = append(os.Environ(), env...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	git(nil, "init", "-q")
	git(nil, "config", "user.email", "t@e.org")
	git(nil, "config", "user.name", "T")
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".sql") {
			continue
		}
		// 0000_2009-03-15.sql -> commit dated 2009-03-15.
		date := strings.TrimSuffix(name[5:], ".sql")
		content, err := os.ReadFile(filepath.Join("testdata/wordpressish", name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(gitDir, "schema.sql"), content, 0o644); err != nil {
			t.Fatal(err)
		}
		stamp := date + "T12:00:00+00:00"
		env := []string{"GIT_AUTHOR_DATE=" + stamp, "GIT_COMMITTER_DATE=" + stamp}
		git(env, "add", "-A")
		git(env, "commit", "-q", "-m", "snapshot "+name)
	}

	fromGit, err := AnalyzeGit(gitDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	fromDir, err := AnalyzeDir("testdata/wordpressish")
	if err != nil {
		t.Fatal(err)
	}

	if fromGit.Pattern != fromDir.Pattern {
		t.Errorf("patterns differ: git %v vs dir %v", fromGit.Pattern, fromDir.Pattern)
	}
	mg, md := fromGit.Measures, fromDir.Measures
	if mg.PUPMonths != md.PUPMonths || mg.BirthMonth != md.BirthMonth ||
		mg.TopBandMonth != md.TopBandMonth || mg.TotalActivity != md.TotalActivity ||
		mg.ActiveGrowthMonths != md.ActiveGrowthMonths {
		t.Errorf("measures differ:\ngit: %+v\ndir: %+v", mg, md)
	}
	for m := range fromGit.History.SchemaMonthly {
		if fromGit.History.SchemaMonthly[m] != fromDir.History.SchemaMonthly[m] {
			t.Errorf("heartbeat month %d: git %d vs dir %d",
				m, fromGit.History.SchemaMonthly[m], fromDir.History.SchemaMonthly[m])
		}
	}
}
