// Predictor: the §6.2 scenario. A curator extracts a project's history,
// sees when the schema was born, and asks: how will this schema evolve?
// We fit the Fig. 7 estimator on the calibrated corpus and answer for a
// few hypothetical projects.
//
// Run with: go run ./examples/predictor
package main

import (
	"context"
	"fmt"
	"log"

	"schemaevo"
	"schemaevo/internal/predict"
)

func main() {
	corpus, err := schemaevo.GeneratePaperCorpus(1)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := schemaevo.AnalyzeCorpusPipeline(context.Background(), corpus, schemaevo.PipelineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n\n", stats)

	var obs []predict.Observation
	for _, p := range corpus.Projects {
		obs = append(obs, predict.Observation{
			BirthMonth: p.Measures.BirthMonth,
			Pattern:    p.Assigned(),
		})
	}
	estimator, err := predict.Fit(obs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Given the month a schema is born, how will it evolve?")
	fmt.Printf("(estimator fitted on %d project histories)\n\n", estimator.N())

	for _, birthMonth := range []int{0, 3, 9, 18} {
		bucket := predict.BucketFor(birthMonth)
		pattern, prob := estimator.PredictPattern(birthMonth)
		fmt.Printf("schema born in month %-2d (bucket %s):\n", birthMonth, bucket)
		fmt.Printf("  most likely pattern: %s (%.0f%%)\n", pattern, prob*100)
		fmt.Printf("  chance the schema freezes right away (Be Quick or Be Dead): %.0f%%\n",
			estimator.FamilyProb(bucket, schemaevo.BeQuickOrBeDead)*100)
		fmt.Printf("  chance of steady, regular curation (Stairway to Heaven):    %.0f%%\n",
			estimator.FamilyProb(bucket, schemaevo.StairwayToHeaven)*100)
		fmt.Printf("  chance of late change (Scared to Fall Asleep Again):        %.0f%%\n\n",
			estimator.FamilyProb(bucket, schemaevo.ScaredToFallAsleepAgain)*100)
	}

	fmt.Println("Project managers can read this as: a schema born on day one will")
	fmt.Println("most likely freeze immediately — plan schema change early or not at all.")
}
