// NoSQL: the paper's first future-work item applied — mine the
// time-related evolution pattern of a document-store collection whose
// "schema" is implicit in its JSON documents.
//
// Run with: go run ./examples/nosql
package main

import (
	"fmt"
	"log"
	"time"

	"schemaevo"
	"schemaevo/internal/chart"
	"schemaevo/internal/core"
	"schemaevo/internal/jsondoc"
	"schemaevo/internal/metrics"
	"schemaevo/internal/quantize"
)

func main() {
	// Snapshots of a user-profile collection over four years: born with a
	// handful of fields, then steadily enriched — a document-store
	// "Regularly Curated" life.
	versions := []jsondoc.Version{
		{Time: date(2019, 3), Docs: []string{
			`{"id": 1, "email": "a@x.io", "name": "Ada"}`,
		}},
		{Time: date(2019, 9), Docs: []string{
			`{"id": 1, "email": "a@x.io", "name": "Ada", "avatar": "a.png"}`,
		}},
		{Time: date(2020, 4), Docs: []string{
			`{"id": 1, "email": "a@x.io", "name": "Ada", "avatar": "a.png",
			  "prefs": {"theme": "dark", "lang": "en"}}`,
		}},
		{Time: date(2020, 11), Docs: []string{
			`{"id": 1, "email": "a@x.io", "name": "Ada", "avatar": "a.png",
			  "prefs": {"theme": "dark", "lang": "en"},
			  "badges": [{"kind": "early", "at": "2020-11-01"}]}`,
		}},
		{Time: date(2021, 6), Docs: []string{
			`{"id": 1, "email": "a@x.io", "name": "Ada", "avatar": "a.png",
			  "prefs": {"theme": "dark", "lang": "en", "tz": "UTC"},
			  "badges": [{"kind": "early", "at": "2020-11-01"}],
			  "followers": 10, "following": 12}`,
		}},
		{Time: date(2022, 2), Docs: []string{
			`{"id": 1, "email": "a@x.io", "name": "Ada", "avatar": "a.png",
			  "prefs": {"theme": "dark", "lang": "en", "tz": "UTC"},
			  "badges": [{"kind": "early", "at": "2020-11-01", "level": 2}],
			  "followers": 10, "following": 12, "bio": "...", "links": ["x"]}`,
		}},
	}

	h, err := jsondoc.History("profiles-collection", versions, date(2019, 1), date(2023, 3))
	if err != nil {
		log.Fatal(err)
	}
	m := metrics.Compute(h)
	labels := quantize.Compute(m, quantize.DefaultScheme())
	pattern := core.ClassifyNearest(labels)

	fmt.Println(chart.ASCII(h.SchemaCumulative(), nil, chart.Options{
		Title: fmt.Sprintf("%s — %s", h.Project, pattern),
	}))
	fmt.Printf("pattern:        %s (family: %s)\n", pattern, schemaevo.FamilyOf(pattern))
	fmt.Printf("fields changed: %d over %d months (birth month %d, %.0f%% at birth)\n",
		m.TotalActivity, m.PUPMonths, m.BirthMonth, m.BirthVolumePct*100)

	final, err := jsondoc.InferCollection(versions[len(versions)-1].Docs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final implicit schema (%d fields): %s\n", final.FieldCount(), final)
}

func date(y int, m time.Month) time.Time {
	return time.Date(y, m, 5, 0, 0, 0, 0, time.UTC)
}
