// Pattern mining: generate the paper-calibrated corpus of 151 project
// histories, push every project through the public analysis pipeline, and
// report the resulting pattern and family distributions — the study of
// §4 of the paper in miniature.
//
// Run with: go run ./examples/patternmining
package main

import (
	"context"
	"fmt"
	"log"

	"schemaevo"
)

func main() {
	corpus, err := schemaevo.GeneratePaperCorpus(1)
	if err != nil {
		log.Fatal(err)
	}
	// One concurrent pipeline run over the whole corpus instead of 151
	// sequential AnalyzeRepo calls.
	stats, err := schemaevo.AnalyzeCorpusPipeline(context.Background(), corpus, schemaevo.PipelineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n\n", stats)

	patternCounts := map[schemaevo.Pattern]int{}
	familyCounts := map[schemaevo.Family]int{}
	agreements := 0

	for _, project := range corpus.Projects {
		pattern := schemaevo.ClassifyNearest(project.Labels)
		patternCounts[pattern]++
		familyCounts[schemaevo.FamilyOf(pattern)]++
		if pattern == project.GroundTruth {
			agreements++
		}
	}

	fmt.Printf("Analyzed %d project histories.\n\n", corpus.Len())
	fmt.Println("Pattern distribution:")
	for _, p := range schemaevo.AllPatterns {
		n := patternCounts[p]
		fmt.Printf("  %-18s %3d  %s\n", p, n, bar(n))
	}
	fmt.Println("\nFamily distribution:")
	for _, f := range []schemaevo.Family{
		schemaevo.BeQuickOrBeDead, schemaevo.StairwayToHeaven, schemaevo.ScaredToFallAsleepAgain,
	} {
		n := familyCounts[f]
		fmt.Printf("  %-28s %3d (%2.0f%%)\n", f, n, 100*float64(n)/float64(corpus.Len()))
	}
	fmt.Printf("\nClassifier agreement with the generator's ground truth: %d/%d\n",
		agreements, corpus.Len())
	fmt.Println("(the handful of disagreements are the Table 2 exception projects,")
	fmt.Println(" which intentionally violate their own pattern's formal definition)")
}

func bar(n int) string {
	out := ""
	for i := 0; i < n; i++ {
		out += "#"
	}
	return out
}
