// Quickstart: analyze a small in-memory project history and print its
// time-related schema-evolution pattern.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"schemaevo"
)

func main() {
	// A project history: the schema is born two months into the project,
	// grows twice early on, and then freezes while the source code keeps
	// moving — the classic "Radical Sign" shape.
	repo := &schemaevo.Repo{
		Name: "webshop",
		Commits: []schemaevo.Commit{
			{ID: "c0", Time: date(2019, 1, 10), SrcLines: 400,
				Files: map[string]string{"main.go": "package main"}},
			{ID: "c1", Time: date(2019, 3, 2), SrcLines: 120,
				Files: map[string]string{"db/schema.sql": `
					CREATE TABLE users (
					  id INT PRIMARY KEY AUTO_INCREMENT,
					  email VARCHAR(255) NOT NULL UNIQUE,
					  created_at TIMESTAMP DEFAULT CURRENT_TIMESTAMP
					);
					CREATE TABLE products (
					  id INT PRIMARY KEY,
					  name VARCHAR(100) NOT NULL,
					  price NUMERIC(10,2)
					);`}},
			{ID: "c2", Time: date(2019, 4, 20), SrcLines: 300,
				Files: map[string]string{"db/schema.sql": `
					CREATE TABLE users (
					  id INT PRIMARY KEY AUTO_INCREMENT,
					  email VARCHAR(255) NOT NULL UNIQUE,
					  created_at TIMESTAMP DEFAULT CURRENT_TIMESTAMP
					);
					CREATE TABLE products (
					  id INT PRIMARY KEY,
					  name VARCHAR(100) NOT NULL,
					  price NUMERIC(10,2)
					);
					CREATE TABLE orders (
					  id INT PRIMARY KEY,
					  user_id INT REFERENCES users(id),
					  product_id INT REFERENCES products(id),
					  quantity INT NOT NULL DEFAULT 1
					);`}},
			{ID: "c3", Time: date(2021, 8, 15), SrcLines: 250,
				Files: map[string]string{"main.go": "package main // v2"}},
		},
	}

	analysis, err := schemaevo.AnalyzeRepo(repo)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(analysis.Chart())
	fmt.Printf("pattern:  %s (family: %s)\n", analysis.Pattern, analysis.Family)
	fmt.Printf("birth:    month %d with %.0f%% of all change\n",
		analysis.Measures.BirthMonth, analysis.Measures.BirthVolumePct*100)
	fmt.Printf("activity: %d affected attributes over %d months of life\n",
		analysis.Measures.TotalActivity, analysis.Measures.PUPMonths)
	fmt.Printf("schema:   %d tables / %d attributes at the end\n",
		analysis.Measures.TablesAtEnd, analysis.Measures.AttrsAtEnd)
}

func date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 12, 0, 0, 0, time.UTC)
}
