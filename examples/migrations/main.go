// Migrations: analyze a project whose schema file is maintained as an
// append-only migration script (CREATE followed by ALTERs), the other
// common style in FOSS repositories besides full dumps. Demonstrates the
// DDL parser's ALTER handling and the per-version change detail.
//
// Run with: go run ./examples/migrations
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"schemaevo"
)

// The migration script grows over time; every commit stores the whole
// file, and the analyzer rebuilds the logical schema per version.
var migrationSteps = []string{
	// v0 — initial schema, month 0.
	`CREATE TABLE accounts (
	   id BIGSERIAL PRIMARY KEY,
	   email CHARACTER VARYING(255) NOT NULL,
	   created_at TIMESTAMP WITH TIME ZONE DEFAULT now()
	 );`,
	// v1 — month 4: a profile table plus a column rename.
	`CREATE TABLE profiles (
	   account_id BIGINT REFERENCES accounts(id) ON DELETE CASCADE,
	   display_name TEXT,
	   bio TEXT
	 );
	 ALTER TABLE accounts RENAME COLUMN email TO email_address;`,
	// v2 — month 9: type widening and a dropped column.
	`ALTER TABLE profiles DROP COLUMN bio;
	 ALTER TABLE accounts ALTER COLUMN email_address TYPE TEXT;`,
	// v3 — month 11: an audit table.
	`CREATE TABLE audit_log (
	   id BIGSERIAL PRIMARY KEY,
	   account_id BIGINT,
	   action VARCHAR(40) NOT NULL,
	   at TIMESTAMP DEFAULT CURRENT_TIMESTAMP
	 );`,
}

func main() {
	start := time.Date(2020, 2, 1, 10, 0, 0, 0, time.UTC)
	months := []int{0, 4, 9, 11}
	repo := &schemaevo.Repo{Name: "migration-style"}
	script := ""
	for i, step := range migrationSteps {
		script += strings.TrimSpace(step) + "\n"
		repo.Commits = append(repo.Commits, schemaevo.Commit{
			ID:       fmt.Sprintf("m%d", i),
			Time:     start.AddDate(0, months[i], 0),
			Files:    map[string]string{"db/migrations.sql": script},
			SrcLines: 150,
		})
	}
	// The project lives on for years after the last migration.
	repo.Commits = append(repo.Commits, schemaevo.Commit{
		ID: "tail", Time: start.AddDate(0, 30, 0),
		Files: map[string]string{"README.md": "stable"}, SrcLines: 40,
	})

	a, err := schemaevo.AnalyzeRepo(repo)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Per-version change detail (unit: affected attributes):")
	for _, v := range a.History.Versions {
		d := v.Delta
		fmt.Printf("  %s  total=%2d  born=%d injected=%d deleted=%d ejected=%d type=%d key=%d\n",
			v.Time.Format("2006-01"), d.Total(),
			d.NBornWithTable, d.NInjected, d.NDeletedWithTable,
			d.NEjected, d.NTypeChanged, d.NKeyChanged)
	}
	final := a.History.FinalSchema()
	fmt.Printf("\nfinal schema: %d tables, %d attributes\n",
		final.TableCount(), final.AttributeCount())
	fmt.Printf("pattern:      %s (family: %s)\n", a.Pattern, a.Family)
	fmt.Printf("expansion:    %d attributes, maintenance: %d\n",
		a.Measures.Expansion, a.Measures.Maintenance)
	fmt.Println()
	fmt.Println(a.Chart())
}
