// Impact: the paper's motivation made concrete. Applications are written
// against an early schema; when the schema evolves, queries break. This
// example replays a small query workload over an evolving project and
// reports the damage version by version.
//
// Run with: go run ./examples/impact
package main

import (
	"fmt"
	"log"
	"time"

	"schemaevo"
	"schemaevo/internal/query"
)

func main() {
	// The application's query workload, written in year one.
	workload, err := query.ParseAll([]string{
		`SELECT id, name, email FROM users WHERE active = true`,
		`SELECT u.name, o.total FROM users u JOIN orders o ON o.user_id = u.id`,
		`SELECT sku, stock FROM inventory`,
		`SELECT id FROM sessions WHERE expires_at < now()`,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The schema's life: inventory is dropped in 2021, sessions loses
	// expires_at in 2022, users.email changes type.
	snapshots := []struct {
		when time.Time
		sql  string
	}{
		{date(2019, 2), `
			CREATE TABLE users (id INT PRIMARY KEY, name TEXT, email VARCHAR(100), active BOOL);
			CREATE TABLE orders (id INT PRIMARY KEY, user_id INT REFERENCES users(id), total NUMERIC(10,2));
			CREATE TABLE inventory (sku VARCHAR(40), stock INT);
			CREATE TABLE sessions (id INT, expires_at TIMESTAMP);`},
		{date(2021, 4), `
			CREATE TABLE users (id INT PRIMARY KEY, name TEXT, email VARCHAR(100), active BOOL);
			CREATE TABLE orders (id INT PRIMARY KEY, user_id INT REFERENCES users(id), total NUMERIC(10,2));
			CREATE TABLE sessions (id INT, expires_at TIMESTAMP);`},
		{date(2022, 8), `
			CREATE TABLE users (id INT PRIMARY KEY, name TEXT, email TEXT, active BOOL);
			CREATE TABLE orders (id INT PRIMARY KEY, user_id INT REFERENCES users(id), total NUMERIC(10,2));
			CREATE TABLE sessions (id INT, token VARCHAR(64));`},
	}
	repo := &schemaevo.Repo{Name: "shop"}
	for i, s := range snapshots {
		repo.Commits = append(repo.Commits, schemaevo.Commit{
			ID: fmt.Sprintf("c%d", i), Time: s.when,
			Files: map[string]string{"schema.sql": s.sql}, SrcLines: 200,
		})
	}

	a, err := schemaevo.AnalyzeRepo(repo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("project %s evolves as: %s\n\n", a.Project, a.Pattern)

	fmt.Println("replaying the year-one workload over the schema history:")
	for _, vi := range query.OverHistory(a.History, workload) {
		when := a.History.Versions[vi.Version].Time.Format("2006-01")
		for _, im := range vi.Impacts {
			fmt.Printf("  %s  %s\n        query: %s\n", when, im, im.Query.Raw)
		}
	}

	// Validate the workload against the final schema.
	fmt.Println("\nworkload vs final schema:")
	final := a.History.FinalSchema()
	for _, q := range workload {
		problems := query.Validate(q, final)
		if len(problems) == 0 {
			fmt.Printf("  %s: OK\n", q.Name)
			continue
		}
		for _, p := range problems {
			fmt.Printf("  %s: %s\n", q.Name, p)
		}
	}
}

func date(y int, m time.Month) time.Time {
	return time.Date(y, m, 10, 0, 0, 0, 0, time.UTC)
}
