// Command benchserve load-tests the HTTP analysis service
// (internal/server) over real loopback sockets and writes the results as
// JSON, so every PR leaves a comparable serving-performance record
// behind (the cmd/benchpipe counterpart for the service layer). All
// traffic is driven through the public schemaevoclient package, so the
// measured path is exactly what an external consumer runs — including
// the client's retry machinery, which must stay silent against a
// healthy service (any retry sleep would show up as a latency outlier).
//
// Six phases are measured:
//
//   - cold: every request is a first-time submission of a distinct DDL
//     history — each one executes the full analysis pipeline;
//   - warm: the same histories are resubmitted for several rounds — every
//     request is answered from the result store's hot tier;
//   - get: every stored project is fetched by ID for several rounds —
//     the zero-copy read path (pre-rendered body, one write, no
//     marshalling);
//   - get304: the same GETs revalidate with If-None-Match — the server
//     answers 304 with zero body bytes;
//   - restart: the server is shut down and a fresh one is opened over the
//     same persistent store directory; the same histories are resubmitted
//     once — every request is answered from the recovered disk tier with
//     zero re-analyses;
//   - batch: the same histories stream through one NDJSON batch-ingest
//     call against the restarted server — the aggregate-throughput shape
//     of the same all-hits workload.
//
// Each phase records p50/p99/mean latency and throughput (the batch
// phase is one streamed request, so only mean and throughput apply);
// the headline ratios are cold p50 over warm p50 (the memoization win a
// duplicate-heavy workload sees) and cold p50 over get p50 (the
// render-cache win a read-heavy workload sees).
//
// Usage:
//
//	benchserve                         # 64 projects, 8 workers, writes BENCH_serve.json
//	benchserve -projects 128 -c 16 -rounds 3 -out bench.json
//	benchserve -render-bytes=-1        # render cache disabled (pre-change baseline)
//	benchserve -check                  # exit 1 unless the cache tiers pay off (CI smoke)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"schemaevo/internal/server"
	"schemaevo/internal/synth"
	"schemaevo/internal/telemetry"
	"schemaevo/schemaevoclient"
)

// phase is one measured workload in the emitted JSON.
type phase struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	P50Us    float64 `json:"p50_us"`
	P99Us    float64 `json:"p99_us"`
	MeanUs   float64 `json:"mean_us"`
	RPS      float64 `json:"rps"`
}

// report is the full BENCH_serve.json document.
type report struct {
	GeneratedBy string  `json:"generated_by"`
	Date        string  `json:"date"`
	Seed        int64   `json:"seed"`
	Projects    int     `json:"projects"`
	Concurrency int     `json:"concurrency"`
	WarmRounds  int     `json:"warm_rounds"`
	Cores       int     `json:"cores"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Phases      []phase `json:"phases"`
	// SpeedupWarmVsCold is cold p50 over warm p50 (higher is better; > 1
	// means the result store is paying off).
	SpeedupWarmVsCold float64 `json:"speedup_warm_vs_cold"`
	// SpeedupGetVsCold is cold p50 over get p50: the zero-copy read
	// path's win over a full analysis.
	SpeedupGetVsCold float64 `json:"speedup_get_vs_cold"`
	// RenderHitRate is the render cache's hit rate during the get phase
	// (1.0 = every GET served pre-rendered bytes); 0 when the cache is
	// disabled.
	RenderHitRate float64 `json:"render_hit_rate"`
	// NotModified304 counts get304-phase requests answered 304.
	NotModified304 int64 `json:"not_modified_304"`
	// PipelineRuns is the server's execution counter after both phases;
	// it must equal Projects — warm traffic never recomputes.
	PipelineRuns int64 `json:"pipeline_runs"`
	// RestartRuns is the restarted server's execution counter after the
	// restart phase; it must be 0 — recovery alone serves the set.
	RestartRuns int64 `json:"restart_runs"`
	// Previous summarizes the artifact this run replaced, so the
	// before/after trajectory of a performance change is readable from the
	// artifact alone.
	Previous *priorSummary `json:"previous,omitempty"`
}

// priorSummary preserves the replaced artifact's headline numbers.
type priorSummary struct {
	Date              string  `json:"date"`
	Seed              int64   `json:"seed"`
	Phases            []phase `json:"phases"`
	SpeedupWarmVsCold float64 `json:"speedup_warm_vs_cold"`
}

// summarizePrior reads the artifact about to be replaced and trims it to
// its headline numbers; a missing or unreadable file yields nil.
func summarizePrior(path string) *priorSummary {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var old report
	if err := json.Unmarshal(data, &old); err != nil || len(old.Phases) == 0 {
		return nil
	}
	return &priorSummary{
		Date:              old.Date,
		Seed:              old.Seed,
		Phases:            old.Phases,
		SpeedupWarmVsCold: old.SpeedupWarmVsCold,
	}
}

func main() {
	var (
		projects    = flag.Int("projects", 64, "distinct submission histories (cold-phase requests)")
		conc        = flag.Int("c", 8, "concurrent client workers")
		rounds      = flag.Int("rounds", 5, "warm/get-phase passes over the project set")
		seed        = flag.Int64("seed", 1, "workload generator seed")
		out         = flag.String("out", "BENCH_serve.json", "output JSON path")
		renderBytes = flag.Int64("render-bytes", 0, "render-cache budget in bytes (0 default, negative disables — the pre-change baseline)")
		check       = flag.Bool("check", false, "exit 1 unless every cache tier pays off (CI smoke)")
	)
	flag.Parse()
	if err := run(*projects, *conc, *rounds, *seed, *out, *renderBytes, *check); err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
}

// workload derives the distinct submission payloads from the seeded
// synthesizer (generation is excluded from every timing).
func workload(n int, seed int64) ([][]byte, error) {
	c, err := synth.RandomCorpus(n, seed)
	if err != nil {
		return nil, err
	}
	payloads := make([][]byte, 0, n)
	for _, p := range c.Projects {
		data, err := json.Marshal(p.Repo)
		if err != nil {
			return nil, err
		}
		payloads = append(payloads, data)
	}
	return payloads, nil
}

// firePhase drives the payload sequence through conc workers submitting
// via the public client and returns per-request latencies, the set of
// returned project IDs (first occurrence order is not preserved), the
// error count, and wall-clock elapsed.
func firePhase(cl *schemaevoclient.Client, payloads [][]byte, conc int) ([]time.Duration, []string, int, time.Duration) {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats = make([]time.Duration, 0, len(payloads))
		ids  = make([]string, 0, len(payloads))
		errs int
		jobs = make(chan []byte)
	)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for body := range jobs {
				t0 := time.Now()
				p, err := cl.Submit(context.Background(), body)
				lat := time.Since(t0)
				mu.Lock()
				if err == nil {
					lats = append(lats, lat)
					ids = append(ids, p.ID)
				} else {
					errs++
				}
				mu.Unlock()
			}
		}()
	}
	for _, p := range payloads {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
	return lats, ids, errs, time.Since(start)
}

// fireGets drives rounds passes of GET-by-ID through conc workers. When
// etags is non-nil it maps each ID to the validator to revalidate with,
// and a response other than 304 counts as an error — the conditional
// phase measures the zero-body path, so a full 200 means the tier is
// not working.
func fireGets(cl *schemaevoclient.Client, ids []string, etags map[string]string, conc, rounds int) ([]time.Duration, int, time.Duration) {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		lats = make([]time.Duration, 0, rounds*len(ids))
		errs int
		jobs = make(chan string)
	)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range jobs {
				var err error
				t0 := time.Now()
				if etags == nil {
					_, err = cl.Get(context.Background(), id)
				} else {
					var notModified bool
					_, _, notModified, err = cl.GetConditional(context.Background(), id, etags[id])
					if err == nil && !notModified {
						err = fmt.Errorf("conditional GET %s returned a full body", id)
					}
				}
				lat := time.Since(t0)
				mu.Lock()
				if err == nil {
					lats = append(lats, lat)
				} else {
					errs++
				}
				mu.Unlock()
			}
		}()
	}
	for r := 0; r < rounds; r++ {
		for _, id := range ids {
			jobs <- id
		}
	}
	close(jobs)
	wg.Wait()
	return lats, errs, time.Since(start)
}

// percentile returns the nearest-rank q-th percentile of sorted
// latencies.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// summarize folds one phase's latencies into the wire form.
func summarize(name string, lats []time.Duration, errs int, elapsed time.Duration) phase {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	p := phase{Name: name, Requests: len(lats) + errs, Errors: errs}
	if len(lats) > 0 {
		p.P50Us = float64(percentile(lats, 0.50).Nanoseconds()) / 1e3
		p.P99Us = float64(percentile(lats, 0.99).Nanoseconds()) / 1e3
		p.MeanUs = float64(sum.Nanoseconds()) / float64(len(lats)) / 1e3
	}
	if elapsed > 0 {
		p.RPS = float64(len(lats)) / elapsed.Seconds()
	}
	return p
}

func run(projects, conc, rounds int, seed int64, out string, renderBytes int64, check bool) error {
	payloads, err := workload(projects, seed)
	if err != nil {
		return err
	}

	// One in-process server on a real loopback socket: the measured path
	// includes HTTP serialization and the kernel, exactly what a client
	// sees.
	// MaxConcurrent matches the generator's worker count: this measures
	// request latency, not backpressure (the 429 path has its own tests).
	storeDir, err := os.MkdirTemp("", "benchserve-store")
	if err != nil {
		return err
	}
	defer os.RemoveAll(storeDir)
	tel := telemetry.New()
	srv, err := server.New(context.Background(), server.Config{
		MaxConcurrent: conc,
		LRUEntries:    2 * projects,
		StoreDir:      storeDir,
		RenderBytes:   renderBytes,
		Telemetry:     tel,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)

	// One attempt per call: a benchmark must surface service errors in
	// its error counts, not absorb them into retry-inflated latencies.
	httpClient := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        conc,
		MaxIdleConnsPerHost: conc,
	}}
	cl := schemaevoclient.New(schemaevoclient.Config{
		BaseURL:     "http://" + ln.Addr().String(),
		HTTPClient:  httpClient,
		MaxAttempts: 1,
	})

	coldLats, ids, coldErrs, coldElapsed := firePhase(cl, payloads, conc)

	warm := make([][]byte, 0, rounds*projects)
	for i := 0; i < rounds; i++ {
		warm = append(warm, payloads...)
	}
	warmLats, _, warmErrs, warmElapsed := firePhase(cl, warm, conc)

	// Get phase: the zero-copy read path, measured over a render-cache
	// hit-rate window so the check can assert the cache actually served.
	preGet := tel.Snapshot().Render
	getLats, getErrs, getElapsed := fireGets(cl, ids, nil, conc, rounds)
	postGet := tel.Snapshot().Render
	var renderHitRate float64
	if lookups := (postGet.Hits - preGet.Hits) + (postGet.Misses - preGet.Misses); lookups > 0 {
		renderHitRate = float64(postGet.Hits-preGet.Hits) / float64(lookups)
	}

	// Get304 phase: collect each project's validator once (untimed),
	// then revalidate for the same number of rounds — every answer must
	// be a zero-body 304.
	etags := make(map[string]string, len(ids))
	for _, id := range ids {
		_, etag, _, err := cl.GetConditional(context.Background(), id, "")
		if err != nil {
			return fmt.Errorf("collecting validators: %w", err)
		}
		etags[id] = etag
	}
	pre304 := tel.Snapshot().Render.NotModified
	get304Lats, get304Errs, get304Elapsed := fireGets(cl, ids, etags, conc, rounds)
	notModified := tel.Snapshot().Render.NotModified - pre304

	// Restart phase: tear the process-equivalent down (listener and
	// store) and recover a fresh server from the same directory. Every
	// resubmission must be served from the recovered disk tier.
	hs.Close()
	if err := srv.Close(); err != nil {
		return err
	}
	srv2, err := server.New(context.Background(), server.Config{
		MaxConcurrent: conc,
		LRUEntries:    2 * projects,
		StoreDir:      storeDir,
		RenderBytes:   renderBytes,
		Telemetry:     telemetry.New(),
	})
	if err != nil {
		return err
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs2 := &http.Server{Handler: srv2}
	go hs2.Serve(ln2)
	defer hs2.Close()
	defer srv2.Close()
	cl2 := schemaevoclient.New(schemaevoclient.Config{
		BaseURL:     "http://" + ln2.Addr().String(),
		HTTPClient:  httpClient,
		MaxAttempts: 1,
	})
	restartLats, _, restartErrs, restartElapsed := firePhase(cl2, payloads, conc)

	// Batch phase: the same all-hits workload as one streamed NDJSON
	// ingest. One request, so per-line percentiles do not apply; mean
	// and throughput carry the signal.
	batchStart := time.Now()
	batchRes, err := cl2.BatchIngest(context.Background(), payloads)
	batchElapsed := time.Since(batchStart)
	if err != nil {
		return fmt.Errorf("batch phase: %w", err)
	}
	batchPhase := phase{Name: "batch", Requests: len(batchRes.Lines), Errors: batchRes.Errors}
	if batchRes.OK > 0 && batchElapsed > 0 {
		batchPhase.MeanUs = float64(batchElapsed.Nanoseconds()) / float64(batchRes.OK) / 1e3
		batchPhase.RPS = float64(batchRes.OK) / batchElapsed.Seconds()
	}

	rep := report{
		GeneratedBy:  "cmd/benchserve",
		Date:         time.Now().UTC().Format("2006-01-02"),
		Seed:         seed,
		Projects:     projects,
		Concurrency:  conc,
		WarmRounds:   rounds,
		Cores:        runtime.NumCPU(),
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		PipelineRuns:   srv.Analyses(),
		RestartRuns:    srv2.Analyses() + srv2.Incrementals(),
		RenderHitRate:  renderHitRate,
		NotModified304: notModified,
		Phases: []phase{
			summarize("cold", coldLats, coldErrs, coldElapsed),
			summarize("warm", warmLats, warmErrs, warmElapsed),
			summarize("get", getLats, getErrs, getElapsed),
			summarize("get304", get304Lats, get304Errs, get304Elapsed),
			summarize("restart", restartLats, restartErrs, restartElapsed),
			batchPhase,
		},
	}
	if rep.Phases[1].P50Us > 0 {
		rep.SpeedupWarmVsCold = rep.Phases[0].P50Us / rep.Phases[1].P50Us
	}
	if rep.Phases[2].P50Us > 0 {
		rep.SpeedupGetVsCold = rep.Phases[0].P50Us / rep.Phases[2].P50Us
	}

	rep.Previous = summarizePrior(out)
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	for _, p := range rep.Phases {
		fmt.Printf("%-7s %6d reqs  p50 %8.0fµs  p99 %8.0fµs  %8.0f req/s  (%d errors)\n",
			p.Name, p.Requests, p.P50Us, p.P99Us, p.RPS, p.Errors)
	}
	fmt.Printf("wrote %s (warm speedup %.1fx, get speedup %.1fx, render hit rate %.2f, %d pipeline runs)\n",
		out, rep.SpeedupWarmVsCold, rep.SpeedupGetVsCold, rep.RenderHitRate, rep.PipelineRuns)

	if check {
		cold, warmP, get, get304, restart, batchP := rep.Phases[0], rep.Phases[1], rep.Phases[2], rep.Phases[3], rep.Phases[4], rep.Phases[5]
		conditionalReqs := int64(rounds * len(ids))
		switch {
		case cold.Errors > 0 || warmP.Errors > 0 || get.Errors > 0 || get304.Errors > 0 || restart.Errors > 0 || batchP.Errors > 0:
			return fmt.Errorf("check: %d cold / %d warm / %d get / %d get304 / %d restart / %d batch requests failed",
				cold.Errors, warmP.Errors, get.Errors, get304.Errors, restart.Errors, batchP.Errors)
		case batchRes.OK != projects || batchRes.Attempts != 1:
			return fmt.Errorf("check: batch ingest acknowledged %d/%d lines in %d attempts — the stream did not complete cleanly",
				batchRes.OK, projects, batchRes.Attempts)
		case rep.PipelineRuns != int64(projects):
			return fmt.Errorf("check: %d pipeline runs for %d distinct projects — warm traffic recomputed", rep.PipelineRuns, projects)
		case rep.RestartRuns != 0:
			return fmt.Errorf("check: restarted server ran %d analyses — recovery did not serve the persisted set", rep.RestartRuns)
		case warmP.P50Us >= cold.P50Us:
			return fmt.Errorf("check: warm p50 %.0fµs is not below cold p50 %.0fµs", warmP.P50Us, cold.P50Us)
		case get.P50Us >= cold.P50Us:
			return fmt.Errorf("check: get p50 %.0fµs is not below cold p50 %.0fµs", get.P50Us, cold.P50Us)
		case renderBytes >= 0 && rep.RenderHitRate < 0.9:
			return fmt.Errorf("check: render hit rate %.2f during the get phase, want >= 0.9", rep.RenderHitRate)
		case renderBytes >= 0 && rep.NotModified304 != conditionalReqs:
			return fmt.Errorf("check: %d of %d conditional GETs answered 304 — revalidation served full bodies", rep.NotModified304, conditionalReqs)
		case restart.P50Us >= cold.P50Us:
			return fmt.Errorf("check: restart p50 %.0fµs is not below cold p50 %.0fµs", restart.P50Us, cold.P50Us)
		}
		fmt.Println("check: ok (warm/get/restart p50 < cold p50, render cache served, 304s zero-body, batch stream clean, no recompute, no errors)")
	}
	return nil
}
