// Command corpusgen generates synthetic schema-history corpora.
//
// Usage:
//
//	corpusgen -out corpus.json                 # the calibrated 151-project paper corpus
//	corpusgen -out corpus.json -n 500 -seed 7  # a random 500-project corpus
//	corpusgen -out corpus.json -dirs snapshots # also write per-project snapshot directories
//	corpusgen -out corpus.json -list           # print a sparkline listing of the corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"schemaevo"
	"schemaevo/internal/chart"
	"schemaevo/internal/vcs"
)

func main() {
	var (
		out  = flag.String("out", "corpus.json", "output corpus file")
		n    = flag.Int("n", 0, "generate a random corpus of this size instead of the paper corpus")
		seed = flag.Int64("seed", 1, "generator seed")
		dirs = flag.String("dirs", "", "also write each project's snapshots under this directory")
		list = flag.Bool("list", false, "print a per-project sparkline listing")
	)
	flag.Parse()
	if err := run(*out, *n, *seed, *dirs, *list); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(out string, n int, seed int64, dirs string, list bool) error {
	var c *schemaevo.Corpus
	var err error
	if n > 0 {
		c, err = schemaevo.GenerateRandomCorpus(n, seed)
	} else {
		c, err = schemaevo.GeneratePaperCorpus(seed)
	}
	if err != nil {
		return err
	}
	if err := c.SaveFile(out); err != nil {
		return err
	}
	fmt.Printf("wrote %d projects to %s\n", c.Len(), out)
	if dirs != "" {
		for _, p := range c.Projects {
			if err := vcs.WriteVersionDir(p.Repo, filepath.Join(dirs, p.Name)); err != nil {
				return err
			}
		}
		fmt.Printf("wrote snapshot directories under %s\n", dirs)
	}
	if list {
		if err := schemaevo.AnalyzeCorpus(c); err != nil {
			return err
		}
		fmt.Println()
		for _, p := range c.Projects {
			fmt.Printf("  %-30s %s  %-18s %3d months, %4d attrs\n",
				p.Name, chart.Sparkline(p.History.SchemaCumulative(), 30),
				p.Assigned(), p.Measures.PUPMonths, p.Measures.TotalActivity)
		}
	}
	return nil
}
