package main

import (
	"os"
	"path/filepath"
	"testing"

	"schemaevo/internal/corpus"
)

func TestRunRandomCorpus(t *testing.T) {
	out := filepath.Join(t.TempDir(), "corpus.json")
	if err := run(out, 5, 3, "", true); err != nil {
		t.Fatal(err)
	}
	c, err := corpus.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 5 {
		t.Errorf("corpus size = %d", c.Len())
	}
}

func TestRunWithSnapshotDirs(t *testing.T) {
	tmp := t.TempDir()
	out := filepath.Join(tmp, "corpus.json")
	dirs := filepath.Join(tmp, "snapshots")
	if err := run(out, 3, 9, dirs, false); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dirs)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("snapshot dirs = %d", len(entries))
	}
	// Each project directory holds at least one dated snapshot.
	files, err := os.ReadDir(filepath.Join(dirs, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Error("empty snapshot directory")
	}
}

func TestRunBadOutputPath(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "no", "such", "dir", "c.json"), 2, 1, "", false); err == nil {
		t.Error("unwritable path should error")
	}
}
