// End-to-end tests: build the real schemaevod binary, run it as a child
// process on 127.0.0.1:0, and drive it over HTTP — covering the full
// serve loop, cross-process byte-stability of the /v1 bodies, the
// telemetry-verified singleflight collapse, and the SIGTERM drain
// sequence.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"schemaevo/internal/vcs"
)

// binPath is the schemaevod binary built once in TestMain.
var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "schemaevod-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	binPath = filepath.Join(dir, "schemaevod")
	build := exec.Command("go", "build", "-o", binPath, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "building schemaevod:", err)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// daemon is one running schemaevod child process.
type daemon struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:<port>
}

// startDaemon launches the binary with the given extra flags on a free
// port and waits for its "serving on" line. The process is killed at
// test cleanup unless the test already waited for it.
func startDaemon(t *testing.T, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(binPath, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})

	// The startup line's shape is pinned by main.go for exactly this
	// parse: "schemaevod: serving on http://127.0.0.1:PORT (...)".
	lineCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "serving on http://") {
				lineCh <- sc.Text()
				return
			}
		}
		close(lineCh)
	}()
	select {
	case line, ok := <-lineCh:
		if !ok {
			t.Fatal("schemaevod exited before announcing its address")
		}
		i := strings.Index(line, "http://")
		rest := line[i:]
		if j := strings.IndexByte(rest, ' '); j >= 0 {
			rest = rest[:j]
		}
		return &daemon{cmd: cmd, base: rest}
	case <-time.After(30 * time.Second):
		t.Fatal("schemaevod did not announce its address within 30s")
		return nil
	}
}

// e2eRepo is a deterministic submission history (fixed timestamps, so
// its analysis is byte-stable across processes).
func e2eRepo() *vcs.Repo {
	day := func(y, m, d int) time.Time {
		return time.Date(y, time.Month(m), d, 9, 0, 0, 0, time.UTC)
	}
	return &vcs.Repo{
		Name: "e2e-project",
		Commits: []vcs.Commit{
			{ID: "a", Time: day(2018, 3, 1), SrcLines: 50, Files: map[string]string{
				"schema.sql": "CREATE TABLE orders (id INT PRIMARY KEY, total INT);",
			}},
			{ID: "b", Time: day(2018, 6, 10), SrcLines: 80, Files: map[string]string{
				"schema.sql": "CREATE TABLE orders (id INT PRIMARY KEY, total INT, placed_at TIMESTAMP);\nCREATE TABLE items (id INT PRIMARY KEY, order_id INT, sku TEXT);",
			}},
			{ID: "c", Time: day(2019, 11, 5), SrcLines: 40},
		},
	}
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func postRepo(base string, r *vcs.Repo) (int, []byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(base+"/v1/projects", "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}

// flow drives healthz → submit → GET by id → corpus stats/patterns
// against one daemon and returns every body keyed by step.
func flow(t *testing.T, base string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}

	status, body := get(t, base+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz: status %d, body %s", status, body)
	}
	out["healthz"] = body

	status, body, err := postRepo(base, e2eRepo())
	if err != nil || status != http.StatusOK {
		t.Fatalf("submit: status %d err %v body %s", status, err, body)
	}
	out["submit"] = body

	var wire struct {
		ID      string `json:"id"`
		Pattern string `json:"pattern"`
	}
	if err := json.Unmarshal(body, &wire); err != nil {
		t.Fatal(err)
	}
	if wire.ID == "" || wire.Pattern == "" {
		t.Fatalf("submit body lacks id/pattern: %s", body)
	}
	status, body = get(t, base+"/v1/projects/"+wire.ID)
	if status != http.StatusOK {
		t.Fatalf("get %s: status %d", wire.ID, status)
	}
	if !bytes.Equal(body, out["submit"]) {
		t.Fatal("GET body differs from POST body")
	}
	out["get"] = body

	status, body = get(t, base+"/v1/corpus/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: status %d", status)
	}
	out["stats"] = body

	status, body = get(t, base+"/v1/corpus/patterns")
	if status != http.StatusOK {
		t.Fatalf("patterns: status %d", status)
	}
	out["patterns"] = body
	return out
}

// TestE2EByteStableAcrossProcesses runs the full flow against two
// freshly started server processes and asserts every /v1 body is
// byte-for-byte identical between them — the acceptance contract that
// results are reproducible across runs, not just within one process.
func TestE2EByteStableAcrossProcesses(t *testing.T) {
	first := flow(t, startDaemon(t, "-synth", "12", "-seed", "3").base)
	second := flow(t, startDaemon(t, "-synth", "12", "-seed", "3").base)
	for step, a := range first {
		if !bytes.Equal(a, second[step]) {
			t.Errorf("%s: bodies differ across two server processes\n--- run 1 ---\n%s\n--- run 2 ---\n%s", step, a, second[step])
		}
	}
}

// TestE2ESingleflight fires concurrent identical submissions at the real
// binary (stalled at the handler-path fault site so they provably
// overlap) and verifies through the public /metrics report that the
// pipeline executed exactly once.
func TestE2ESingleflight(t *testing.T) {
	d := startDaemon(t,
		"-fault-seed", "1", "-fault-rate", "1",
		"-fault-sites", "server.submit", "-fault-kinds", "delay", "-fault-delay", "500ms")

	const n = 8
	var (
		wg    sync.WaitGroup
		start = make(chan struct{})
		mu    sync.Mutex
		codes []int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			status, body, err := postRepo(d.base, e2eRepo())
			if err != nil {
				t.Error(err)
				return
			}
			if status != http.StatusOK {
				t.Errorf("submit: status %d, body %s", status, body)
			}
			mu.Lock()
			codes = append(codes, status)
			mu.Unlock()
		}()
	}
	close(start)
	wg.Wait()
	if len(codes) != n {
		t.Fatalf("%d/%d submissions completed", len(codes), n)
	}

	_, body := get(t, d.base+"/metrics")
	var rep struct {
		Stages []struct {
			Name string `json:"name"`
			Jobs int64  `json:"jobs"`
		} `json:"stages"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	jobs := map[string]int64{}
	for _, st := range rep.Stages {
		jobs[st.Name] = st.Jobs
	}
	if jobs["http.submit"] != n {
		t.Errorf("http.submit jobs = %d, want %d", jobs["http.submit"], n)
	}
	if jobs["analyze.exec"] != 1 {
		t.Errorf("analyze.exec jobs = %d, want exactly 1 (singleflight collapse)", jobs["analyze.exec"])
	}
}

// TestE2ESigtermDrain sends SIGTERM while a (fault-stalled) submission
// is in flight and asserts the drain contract end to end: the in-flight
// request completes with a full 200, new requests are refused, and the
// process exits 0.
func TestE2ESigtermDrain(t *testing.T) {
	d := startDaemon(t,
		"-retry-after", "1s", "-drain-timeout", "20s",
		"-fault-seed", "1", "-fault-rate", "1",
		"-fault-sites", "server.submit", "-fault-kinds", "delay", "-fault-delay", "2s")

	type result struct {
		status int
		body   []byte
		err    error
	}
	slow := make(chan result, 1)
	go func() {
		status, body, err := postRepo(d.base, e2eRepo())
		slow <- result{status, body, err}
	}()

	// Give the submission time to enter the handler (it then stalls for
	// 2s at the fault site), then signal.
	time.Sleep(500 * time.Millisecond)
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Let the signal handler flip the drain gate (well inside the 2s
	// window the in-flight submission is stalled for).
	time.Sleep(300 * time.Millisecond)

	// New traffic on a fresh connection is refused: either 503 from the
	// drain gate or a connection error once the listener closes.
	if resp, err := http.Get(d.base + "/healthz"); err == nil {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("healthz during drain: status %d, want 503 (or refused)", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// The in-flight submission survives the signal and completes fully.
	r := <-slow
	if r.err != nil {
		t.Fatalf("in-flight submission failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight submission: status %d, body %s", r.status, r.body)
	}
	var wire struct {
		Pattern string `json:"pattern"`
	}
	if err := json.Unmarshal(r.body, &wire); err != nil || wire.Pattern == "" {
		t.Fatalf("in-flight submission returned an incomplete body: %s", r.body)
	}

	// And the process exits cleanly once drained.
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("schemaevod exited non-zero after drain: %v", err)
		}
	case <-time.After(25 * time.Second):
		t.Fatal("schemaevod did not exit after drain")
	}
}

// TestE2EKillLoop is the crash-durability acceptance test: a daemon on a
// persistent store is SIGKILLed (no drain, no flush courtesy) in the
// middle of a paced ingest stream, several times in a row over the same
// directory. Every write that was ACKNOWLEDGED (200 + body received)
// before each kill must survive every subsequent crash-recovery cycle
// and be served byte-identically by the final process. Submissions are
// paced with a delay fault at the handler site so each kill reliably
// lands mid-ingest.
func TestE2EKillLoop(t *testing.T) {
	dir := t.TempDir()
	type ackedWrite struct {
		id   string
		body []byte
	}
	var acked []ackedWrite
	next := 0

	for round := 0; round < 3; round++ {
		d := startDaemon(t, "-store-dir", dir, "-store-shards", "4",
			"-fault-seed", "1", "-fault-rate", "1",
			"-fault-sites", "server.submit", "-fault-kinds", "delay", "-fault-delay", "50ms")

		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				r := e2eRepo()
				r.Name = fmt.Sprintf("kill-survivor-%03d", next)
				status, body, err := postRepo(d.base, r)
				if err != nil || status != http.StatusOK {
					return // the kill landed; the in-flight write is unacked
				}
				var wire struct {
					ID string `json:"id"`
				}
				if json.Unmarshal(body, &wire) != nil || wire.ID == "" {
					return
				}
				acked = append(acked, ackedWrite{wire.ID, body})
				next++
			}
		}()

		// Let a few submissions land, then kill without ceremony.
		time.Sleep(400 * time.Millisecond)
		if err := d.cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		<-done
		d.cmd.Wait()
	}

	if len(acked) == 0 {
		t.Fatal("no writes were acknowledged before the kills; the test proved nothing")
	}
	t.Logf("3 kill rounds, %d acknowledged writes", len(acked))

	// The final process recovers the store and must serve every acked
	// write byte-identically — zero acked-write loss across 3 crashes.
	d := startDaemon(t, "-store-dir", dir)
	for _, a := range acked {
		status, got := get(t, d.base+"/v1/projects/"+a.id)
		if status != http.StatusOK {
			t.Fatalf("acked write %s lost after kill loop: GET status %d", a.id, status)
		}
		if !bytes.Equal(got, a.body) {
			t.Errorf("acked write %s: recovered body differs from the acknowledged bytes", a.id)
		}
	}
}

// TestE2EWarmRestart is the persistence acceptance test against the real
// binary: projects ingested through the streaming batch endpoint survive
// a SIGTERM and a process restart on the same -store-dir, are served
// byte-identically from the disk tier, and the restarted process runs
// zero analyses to do it (verified through /metrics).
func TestE2EWarmRestart(t *testing.T) {
	dir := t.TempDir()
	d1 := startDaemon(t, "-store-dir", dir, "-store-shards", "4")

	// Ingest via the batch endpoint: the e2e repo plus a variant.
	other := e2eRepo()
	other.Name = "e2e-sibling"
	other.Commits = other.Commits[:2]
	l1, _ := json.Marshal(e2eRepo())
	l2, _ := json.Marshal(other)
	ndjson := string(l1) + "\n" + string(l2) + "\n"
	resp, err := http.Post(d1.base+"/v1/projects:batch", "application/x-ndjson", strings.NewReader(ndjson))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d err %v", resp.StatusCode, err)
	}
	var ids []string
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var lw struct {
			Status string `json:"status"`
			ID     string `json:"id"`
			OK     int    `json:"ok"`
			Errors int    `json:"errors"`
		}
		if err := json.Unmarshal([]byte(line), &lw); err != nil {
			t.Fatalf("batch line %q: %v", line, err)
		}
		switch lw.Status {
		case "ok":
			ids = append(ids, lw.ID)
		case "error":
			t.Fatalf("batch line failed: %s", line)
		case "summary":
			if lw.OK != 2 || lw.Errors != 0 {
				t.Fatalf("batch summary: %s", line)
			}
		}
	}
	if len(ids) != 2 {
		t.Fatalf("batch returned %d ids, want 2", len(ids))
	}
	var bodies [][]byte
	for _, id := range ids {
		status, body := get(t, d1.base+"/v1/projects/"+id)
		if status != http.StatusOK {
			t.Fatalf("GET %s: status %d", id, status)
		}
		bodies = append(bodies, body)
	}

	// Clean shutdown so every segment is flushed and closed.
	if err := d1.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := d1.cmd.Wait(); err != nil {
		t.Fatalf("first daemon exited non-zero: %v", err)
	}

	d2 := startDaemon(t, "-store-dir", dir)
	status, body := get(t, d2.base+"/healthz")
	if status != http.StatusOK {
		t.Fatalf("restart healthz: %d", status)
	}
	var hz struct {
		Stored int `json:"stored"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Stored != 2 {
		t.Fatalf("restart healthz stored = %d, want 2", hz.Stored)
	}
	for i, id := range ids {
		status, got := get(t, d2.base+"/v1/projects/"+id)
		if status != http.StatusOK {
			t.Fatalf("restart GET %s: status %d", id, status)
		}
		if !bytes.Equal(got, bodies[i]) {
			t.Errorf("restart GET %s: body differs from the pre-restart bytes", id)
		}
	}

	_, body = get(t, d2.base+"/metrics")
	var rep struct {
		Stages []struct {
			Name string `json:"name"`
			Jobs int64  `json:"jobs"`
		} `json:"stages"`
		Store struct {
			DiskHits   int64 `json:"disk_hits"`
			Reanalyses int64 `json:"reanalyses"`
		} `json:"store"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, st := range rep.Stages {
		if (st.Name == "analyze.exec" || st.Name == "analyze.incr") && st.Jobs != 0 {
			t.Errorf("%s jobs = %d after warm restart, want 0", st.Name, st.Jobs)
		}
	}
	if rep.Store.DiskHits == 0 {
		t.Error("warm restart served no disk hits")
	}
	if rep.Store.Reanalyses != 0 {
		t.Errorf("warm restart re-analyzed %d projects, want 0", rep.Store.Reanalyses)
	}
}
