// Command schemaevod serves the schema-evolution analysis toolchain over
// HTTP: submit DDL commit histories for pattern analysis, look results up
// by content-hash ID, query corpus-wide pattern statistics, and scrape
// run telemetry. See internal/server for the endpoint semantics and
// DESIGN.md §9 for the backpressure and drain contract.
//
// Usage:
//
//	schemaevod                                # empty corpus, 127.0.0.1:8080
//	schemaevod -corpus corpus.json            # preload a serialized corpus
//	schemaevod -synth 151 -seed 1             # preload a synthetic corpus
//	schemaevod -addr 127.0.0.1:0              # pick a free port (printed)
//	schemaevod -cache /var/cache/schemaevo    # persistent result cache
//	schemaevod -store-dir /var/lib/schemaevo  # persistent project store (survives restarts)
//	schemaevod -store-shards 16 -hot-bytes 67108864
//	schemaevod -render-bytes 134217728        # 128 MiB pre-rendered response cache
//	schemaevod -scrub-interval 1m -disk-low 104857600  # self-healing knobs
//	schemaevod -max-concurrent 8 -request-timeout 10s
//	schemaevod -fault-seed 7 -fault-rate 0.2  # chaos mode
//
// On SIGINT/SIGTERM the server drains: in-flight requests complete, new
// ones are answered 503 + Retry-After, and the process exits 0 once idle
// (or after -drain-timeout, whichever is first).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"schemaevo/internal/corpus"
	"schemaevo/internal/faultinject"
	"schemaevo/internal/server"
	"schemaevo/internal/synth"
	"schemaevo/internal/telemetry"
)

// options collects the command-line configuration.
type options struct {
	addr           string
	corpusPath     string
	synthN         int
	seed           int64
	cacheDir       string
	storeDir       string
	storeShards    int
	analysisShards int
	dialect        string
	hotBytes       int64
	maxConcurrent  int
	requestTimeout time.Duration
	lruEntries     int
	renderBytes    int64
	retryAfter     time.Duration
	drainTimeout   time.Duration
	scrubInterval  time.Duration
	diskLow        int64
	faultSeed      int64
	faultRate      float64
	faultSites     string
	faultKinds     string
	faultDelay     time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address (use :0 to pick a free port)")
	flag.StringVar(&o.corpusPath, "corpus", "", "preload a serialized corpus (JSON, see corpusgen)")
	flag.IntVar(&o.synthN, "synth", 0, "preload a synthetic corpus of this many projects (0 disables; with -corpus, -corpus wins)")
	flag.Int64Var(&o.seed, "seed", 1, "synthetic corpus generator seed (with -synth)")
	flag.StringVar(&o.cacheDir, "cache", "", "pipeline disk-cache directory for submitted analyses (empty disables)")
	flag.StringVar(&o.storeDir, "store-dir", "", "persistent project-store directory: submitted sources and results survive restarts (empty = memory only)")
	flag.IntVar(&o.storeShards, "store-shards", 0, "segment-file count for a new store directory (0 = 8; existing directories keep their count)")
	flag.IntVar(&o.analysisShards, "analysis-shards", 0, "analysis pipeline shard count (0 = GOMAXPROCS; 1 = sequential path)")
	flag.StringVar(&o.dialect, "dialect", "", "SQL dialect for every analysis: auto, generic, mysql, postgres or sqlite (default generic)")
	flag.Int64Var(&o.hotBytes, "hot-bytes", 0, "in-memory hot-tier byte budget (0 = 256 MiB)")
	flag.IntVar(&o.maxConcurrent, "max-concurrent", 0, "max concurrently executing submissions before 429 (0 = 2×GOMAXPROCS)")
	flag.DurationVar(&o.requestTimeout, "request-timeout", 30*time.Second, "per-request deadline")
	flag.IntVar(&o.lruEntries, "lru", 1024, "in-memory result store capacity (entries)")
	flag.Int64Var(&o.renderBytes, "render-bytes", 0, "pre-rendered response cache byte budget (0 = 64 MiB, negative disables)")
	flag.DurationVar(&o.retryAfter, "retry-after", time.Second, "backoff hint advertised on 429/503 responses")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
	flag.DurationVar(&o.scrubInterval, "scrub-interval", 30*time.Second, "background store-scrubber pass interval (0 disables; with -store-dir)")
	flag.Int64Var(&o.diskLow, "disk-low", 0, "free-space floor in bytes: below it the store flips read-only until space recovers (0 disables)")
	flag.Int64Var(&o.faultSeed, "fault-seed", 0, "chaos mode: inject deterministic faults with this seed (0 disables)")
	flag.Float64Var(&o.faultRate, "fault-rate", 0.05, "chaos mode: fraction of fault sites that fire (with -fault-seed)")
	flag.StringVar(&o.faultSites, "fault-sites", "", "chaos mode: comma-separated site allowlist (empty = every site)")
	flag.StringVar(&o.faultKinds, "fault-kinds", "", "chaos mode: comma-separated kinds (io-error,corrupt,delay,panic; empty = all)")
	flag.DurationVar(&o.faultDelay, "fault-delay", time.Millisecond, "chaos mode: stall applied by delay faults")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "schemaevod:", err)
		os.Exit(1)
	}
}

// parseFaultKinds maps the CLI's comma list to injector kinds.
func parseFaultKinds(list string) ([]faultinject.Kind, error) {
	if list == "" {
		return nil, nil
	}
	var out []faultinject.Kind
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, k := range faultinject.AllKinds {
			if k.String() == name {
				out = append(out, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown fault kind %q", name)
		}
	}
	return out, nil
}

// loadCorpus resolves the -corpus/-synth flags into the corpus to serve.
func loadCorpus(o options) (*corpus.Corpus, error) {
	switch {
	case o.corpusPath != "":
		return corpus.LoadFile(o.corpusPath)
	case o.synthN > 0:
		return synth.RandomCorpus(o.synthN, o.seed)
	}
	return &corpus.Corpus{}, nil
}

func run(o options) error {
	c, err := loadCorpus(o)
	if err != nil {
		return err
	}
	var fault *faultinject.Injector
	if o.faultSeed != 0 {
		kinds, err := parseFaultKinds(o.faultKinds)
		if err != nil {
			return err
		}
		var sites []string
		if o.faultSites != "" {
			sites = strings.Split(o.faultSites, ",")
		}
		fault = faultinject.New(faultinject.Config{
			Seed: o.faultSeed, Rate: o.faultRate, Kinds: kinds, Sites: sites, Delay: o.faultDelay,
		})
		fmt.Fprintf(os.Stderr, "schemaevod: chaos mode (seed %d, rate %.2f)\n", o.faultSeed, o.faultRate)
	}

	srv, err := server.New(context.Background(), server.Config{
		Corpus:         c,
		CacheDir:       o.cacheDir,
		StoreDir:       o.storeDir,
		StoreShards:    o.storeShards,
		AnalysisShards: o.analysisShards,
		Dialect:        o.dialect,
		HotBytes:       o.hotBytes,
		MaxConcurrent:  o.maxConcurrent,
		RequestTimeout: o.requestTimeout,
		LRUEntries:     o.lruEntries,
		RenderBytes:    o.renderBytes,
		RetryAfter:     o.retryAfter,
		ScrubInterval:  o.scrubInterval,
		DiskLowBytes:   o.diskLow,
		Telemetry:      telemetry.New(),
		Fault:          fault,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	// The e2e harness parses this line to find the bound port; keep its
	// shape stable.
	fmt.Printf("schemaevod: serving on http://%s (%d corpus projects)\n", ln.Addr(), c.Len())

	// ReadHeaderTimeout bounds header dribbling; no whole-request
	// ReadTimeout because the batch endpoint legitimately streams its body
	// for longer than any fixed budget (it bounds its own reads per line
	// and on drain).
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "schemaevod: %v: draining (in-flight %d)\n", sig, srv.InFlight())
		// Flip the drain gate first so requests on live keep-alive
		// connections get 503 immediately, then let Shutdown close the
		// listener and wait for the in-flight set.
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := srv.Close(); err != nil {
			return fmt.Errorf("store close: %w", err)
		}
		fmt.Fprintln(os.Stderr, "schemaevod: drained, exiting")
		return nil
	case err := <-errCh:
		srv.Close()
		if err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
}
