package main

import (
	"os"
	"path/filepath"
	"testing"
)

// cfgFor builds the run configuration the CLI would produce for the given
// positional settings, with default degradation tolerance.
func cfgFor(seed int64, ablation bool, only, outDir, cacheDir string) config {
	return config{seed: seed, ablation: ablation, only: only, outDir: outDir,
		cacheDir: cacheDir, maxFailures: 0.25}
}

// TestRunSingleArtifacts exercises each -only selector; the full run is
// covered by TestRunAll.
func TestRunSingleArtifacts(t *testing.T) {
	// Silence the command's stdout while testing.
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()

	for _, only := range []string{"t1", "t2", "fig1", "fig2", "fig3", "fig4",
		"fig5", "fig6", "fig7", "s34", "s52", "s61", "s62", "s63"} {
		degraded, err := run(cfgFor(1, false, only, "", ""))
		if err != nil {
			t.Fatalf("-only %s: %v", only, err)
		}
		if degraded {
			t.Fatalf("-only %s: degraded on a healthy corpus", only)
		}
	}
}

func TestRunAllWithAblation(t *testing.T) {
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()
	degraded, err := run(cfgFor(2, true, "", t.TempDir(), t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if degraded {
		t.Fatal("degraded on a healthy corpus")
	}
}

func TestRunWritesArtifacts(t *testing.T) {
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	dir := t.TempDir()
	if _, err := run(cfgFor(1, false, "fig1", dir, "")); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig1.txt", "fig1.svg"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s empty", name)
		}
	}
}
