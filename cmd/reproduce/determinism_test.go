package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestRunByteIdenticalAcrossRuns performs the complete reproduction twice
// with no cache and requires every emitted artifact to be byte-identical:
// nothing in the pipeline — map iteration, goroutine scheduling, float
// accumulation order — may leak nondeterminism into the outputs.
func TestRunByteIdenticalAcrossRuns(t *testing.T) {
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()

	dirs := []string{t.TempDir(), t.TempDir()}
	for _, dir := range dirs {
		if _, err := run(cfgFor(1, false, "", dir, "")); err != nil {
			t.Fatal(err)
		}
	}

	first, err := os.ReadDir(dirs[0])
	if err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadDir(dirs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("full run emitted no artifacts")
	}
	if len(first) != len(second) {
		t.Fatalf("artifact counts differ: %d vs %d", len(first), len(second))
	}
	for _, e := range first {
		a, err := os.ReadFile(filepath.Join(dirs[0], e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[1], e.Name()))
		if err != nil {
			t.Fatalf("%s: present in first run only: %v", e.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: differs between two identical runs (%d vs %d bytes)", e.Name(), len(a), len(b))
		}
	}
}
