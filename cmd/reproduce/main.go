// Command reproduce regenerates every table and figure of the paper's
// evaluation from the calibrated synthetic corpus, printing them in paper
// order. With -ablation it also runs the extension analyses (label
// sensitivity, tree depth, unsupervised cross-check, co-evolution, query
// impact, table rigidity, prediction cross-validation).
//
// Usage:
//
//	reproduce                 # all paper artifacts, seed 1
//	reproduce -seed 7         # a different corpus instance
//	reproduce -ablation       # include the ablations and extensions
//	reproduce -only fig7      # a single artifact (t1 t2 fig1..fig7 s34 s52 s61 s62 s63)
//	reproduce -out artifacts  # also write every artifact to files (txt + svg)
//	reproduce -cache DIR      # memoize per-project analysis under DIR
//	reproduce -nocache        # disable the analysis cache
//	reproduce -project-timeout 30s   # quarantine projects stuck longer than this
//	reproduce -max-failures 0.25     # tolerate losing up to 25% of the corpus
//	reproduce -fault-seed 7          # chaos mode: inject deterministic faults
//	reproduce -telemetry-json t.json # write the run's telemetry report (stable JSON)
//	reproduce -telemetry-trace t.jsonl  # write per-project spans as JSONL
//	reproduce -pprof 127.0.0.1:6060  # serve net/http/pprof + expvar + live telemetry
//
// The corpus analysis runs through the staged concurrent pipeline with a
// content-hash result cache (default: a "schemaevo" directory under the
// user cache dir), so re-runs of the same seed skip history and metrics
// recomputation entirely; the printed pipeline statistics show the cache
// hits.
//
// The run is fault-tolerant: a project whose analysis fails, panics, or
// exceeds -project-timeout is dropped and itemized in a printed
// degradation report instead of aborting the reproduction — mirroring the
// paper's own study, which proceeded with 151 of 195 mined repositories.
// -max-failures bounds the acceptable loss as a fraction of the corpus
// (default 0.25, roughly the paper's survival rate); beyond it the run
// fails. Exit codes: 0 clean, 1 error, 2 completed but degraded.
// -fault-seed enables the deterministic chaos harness (with -fault-rate)
// for exercising exactly these paths.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"schemaevo/internal/experiments"
	"schemaevo/internal/faultinject"
	"schemaevo/internal/pipeline"
	"schemaevo/internal/report"
	"schemaevo/internal/telemetry"
)

// config is the parsed command line.
type config struct {
	seed           int64
	ablation       bool
	only           string
	outDir         string
	cacheDir       string
	projectTimeout time.Duration
	maxFailures    float64
	faultSeed      int64
	faultRate      float64
	telemetryJSON  string
	telemetryTrace string
	pprofAddr      string
}

func main() {
	var (
		cfg      config
		cacheDir = flag.String("cache", "", "analysis cache directory (default: <user-cache>/schemaevo)")
		nocache  = flag.Bool("nocache", false, "disable the analysis cache")
		only     = flag.String("only", "", "run a single artifact (t1,t2,fig1..fig7,s34,s52,s61,s62,s63)")
	)
	flag.Int64Var(&cfg.seed, "seed", 1, "corpus generator seed")
	flag.BoolVar(&cfg.ablation, "ablation", false, "also run the ablation analyses")
	flag.StringVar(&cfg.outDir, "out", "", "directory to write artifact files into")
	flag.DurationVar(&cfg.projectTimeout, "project-timeout", 0, "per-project analysis deadline; stuck projects are quarantined (0 disables)")
	flag.Float64Var(&cfg.maxFailures, "max-failures", 0.25, "maximum tolerated fraction of lost projects before the run fails")
	flag.Int64Var(&cfg.faultSeed, "fault-seed", 0, "chaos harness: inject deterministic faults with this seed (0 disables)")
	flag.Float64Var(&cfg.faultRate, "fault-rate", 0.05, "chaos harness: fraction of fault sites that fire (with -fault-seed)")
	flag.StringVar(&cfg.telemetryJSON, "telemetry-json", "", "write the run's telemetry report (stage timings, cache counters, degradation events) to this path")
	flag.StringVar(&cfg.telemetryTrace, "telemetry-trace", "", "write per-project trace spans as JSONL to this path")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "serve net/http/pprof, expvar and live telemetry on this address (e.g. 127.0.0.1:6060)")
	flag.Parse()
	cfg.only = strings.ToLower(*only)
	cfg.cacheDir = *cacheDir
	if cfg.cacheDir == "" && !*nocache {
		cfg.cacheDir = defaultCacheDir()
	}
	if *nocache {
		cfg.cacheDir = ""
	}
	degraded, err := run(cfg)
	switch {
	case err != nil:
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	case degraded:
		fmt.Fprintln(os.Stderr, "reproduce: completed degraded — some projects were skipped (see the degradation report above)")
		os.Exit(2)
	}
}

// defaultCacheDir picks the per-user cache location; empty (= caching
// disabled) when the platform reports no user cache dir.
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "schemaevo")
}

// run executes the reproduction; degraded reports that it completed but
// lost projects along the way (exit code 2).
func run(cfg config) (degraded bool, err error) {
	seed := cfg.seed
	fmt.Printf("Generating the calibrated corpus (seed %d) and running the full pipeline...\n\n", seed)
	opts := pipeline.Options{CacheDir: cfg.cacheDir, ProjectTimeout: cfg.projectTimeout}
	var tel *telemetry.Collector
	if cfg.telemetryJSON != "" || cfg.telemetryTrace != "" || cfg.pprofAddr != "" {
		tel = telemetry.New()
		opts.Telemetry = tel
	}
	if cfg.pprofAddr != "" {
		addr, err := telemetry.Serve(cfg.pprofAddr, tel)
		if err != nil {
			return false, err
		}
		fmt.Printf("pprof: serving /debug/pprof, /debug/vars and /debug/telemetry on http://%s\n\n", addr)
	}
	if cfg.faultSeed != 0 {
		opts.Fault = faultinject.New(faultinject.Config{Seed: cfg.faultSeed, Rate: cfg.faultRate})
		fmt.Printf("chaos: injecting deterministic faults (seed %d, rate %.2f)\n\n", cfg.faultSeed, cfg.faultRate)
	}
	ctx, stats, err := experiments.NewPaperContextTolerant(seed, opts)
	if err != nil {
		return false, err
	}
	fmt.Printf("%s\n", stats)
	if rep := stats.Degradation; rep.Degraded() {
		degraded = true
		fmt.Print(rep.Render())
		if rep.LossFraction() > cfg.maxFailures {
			return true, fmt.Errorf("lost %.1f%% of the corpus, above the -max-failures bound of %.0f%%",
				rep.LossFraction()*100, cfg.maxFailures*100)
		}
		fmt.Printf("continuing with the %d surviving projects\n", ctx.Corpus.Len())
	}
	if opts.Fault != nil {
		fmt.Printf("chaos: %s\n", opts.Fault.Summary())
	}
	fmt.Printf("Corpus: %d projects with lifetime > 12 months.\n\n", ctx.Corpus.Len())
	if err := emitArtifacts(cfg, ctx); err != nil {
		return degraded, err
	}
	return degraded, writeTelemetry(cfg, tel)
}

// writeTelemetry prints the run's telemetry digest and lands the report and
// trace files requested on the command line. No-op without a collector.
func writeTelemetry(cfg config, tel *telemetry.Collector) error {
	if tel == nil {
		return nil
	}
	fmt.Print(tel.Snapshot().Summary())
	if cfg.telemetryJSON != "" {
		f, err := os.Create(cfg.telemetryJSON)
		if err != nil {
			return err
		}
		werr := tel.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("telemetry report written to %s\n", cfg.telemetryJSON)
	}
	if cfg.telemetryTrace != "" {
		f, err := os.Create(cfg.telemetryTrace)
		if err != nil {
			return err
		}
		werr := tel.WriteTraceJSONL(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Printf("telemetry trace written to %s\n", cfg.telemetryTrace)
	}
	return nil
}

// emitArtifacts prints (and with -out, writes) every requested artifact in
// paper order.
func emitArtifacts(cfg config, ctx *experiments.Context) error {
	seed, only, outDir, ablation := cfg.seed, cfg.only, cfg.outDir, cfg.ablation
	var err error

	var htmlRep *report.HTMLReport
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		htmlRep = report.NewHTMLReport(
			fmt.Sprintf("Time-Related Patterns of Schema Evolution — reproduction (seed %d)", seed))
	}
	want := func(key string) bool { return only == "" || only == key }
	emit := func(key, body string) error {
		fmt.Println(body)
		fmt.Println()
		if outDir == "" {
			return nil
		}
		htmlRep.AddText(key, body)
		return os.WriteFile(filepath.Join(outDir, key+".txt"), []byte(body+"\n"), 0o644)
	}

	if want("fig1") {
		f1 := experiments.Figure1(ctx)
		if err := emit("fig1", f1.Render()); err != nil {
			return err
		}
		if outDir != "" {
			if err := os.WriteFile(filepath.Join(outDir, "fig1.svg"), []byte(f1.SVG), 0o644); err != nil {
				return err
			}
			htmlRep.AddSVG("fig1 (chart)", f1.SVG)
		}
	}
	if want("t1") {
		if err := emit("t1", experiments.Table1(ctx).Render()); err != nil {
			return err
		}
	}
	if want("s34") {
		r, err := experiments.Section34(ctx)
		if err != nil {
			return err
		}
		if err := emit("s34", r.Render()); err != nil {
			return err
		}
	}
	var f2 *experiments.Figure2Result
	if want("fig2") {
		f2, err = experiments.Figure2(ctx)
		if err != nil {
			return err
		}
		if err := emit("fig2", f2.Render()); err != nil {
			return err
		}
	}
	if want("fig3") {
		f3 := experiments.Figure3(ctx)
		if err := emit("fig3", f3.Render()); err != nil {
			return err
		}
		if outDir != "" {
			for _, pattern := range experiments.Figure3Order(f3) {
				name := "fig3-" + strings.ReplaceAll(strings.ToLower(pattern.String()), " ", "-")
				if err := os.WriteFile(filepath.Join(outDir, name+".svg"), []byte(f3.SVGs[pattern]), 0o644); err != nil {
					return err
				}
				htmlRep.AddSVG("fig3: "+pattern.String(), f3.SVGs[pattern])
			}
		}
	}
	if want("fig4") {
		if err := emit("fig4", experiments.Figure4(ctx).Render()); err != nil {
			return err
		}
	}
	if want("t2") {
		if err := emit("t2", experiments.Table2(ctx).Render()); err != nil {
			return err
		}
	}
	if want("s52") {
		r, err := experiments.Section52(ctx)
		if err != nil {
			return err
		}
		if err := emit("s52", r.Render()); err != nil {
			return err
		}
	}
	if want("fig5") {
		r, err := experiments.Figure5(ctx)
		if err != nil {
			return err
		}
		if err := emit("fig5", r.Render()); err != nil {
			return err
		}
	}
	if want("fig6") {
		if err := emit("fig6", experiments.Figure6(ctx).Render()); err != nil {
			return err
		}
	}
	var f7 *experiments.Figure7Result
	if want("fig7") || want("s62") {
		f7, err = experiments.Figure7(ctx)
		if err != nil {
			return err
		}
	}
	if want("fig7") {
		if err := emit("fig7", f7.Render()); err != nil {
			return err
		}
	}
	if want("s61") {
		if err := emit("s61", experiments.Section61(ctx).Render()); err != nil {
			return err
		}
	}
	if want("s62") {
		if err := emit("s62", experiments.Section62(f7).Render()); err != nil {
			return err
		}
	}
	if want("s63") {
		if err := emit("s63", experiments.Section63(ctx).Render()); err != nil {
			return err
		}
	}

	if ablation {
		fmt.Println(strings.Repeat("=", 70))
		fmt.Println("ABLATIONS AND EXTENSIONS")
		fmt.Println(strings.Repeat("=", 70))
		fmt.Println()
		ls, err := experiments.LabelSensitivity(ctx)
		if err != nil {
			return err
		}
		if err := emit("ablation-labels", ls.Render()); err != nil {
			return err
		}
		td, err := experiments.TreeDepth(ctx)
		if err != nil {
			return err
		}
		if err := emit("ablation-tree-depth", td.Render()); err != nil {
			return err
		}
		un, err := experiments.Unsupervised(ctx, seed)
		if err != nil {
			return err
		}
		if err := emit("ablation-kmeans", un.Render()); err != nil {
			return err
		}
		co, err := experiments.CoEvolution(ctx)
		if err != nil {
			return err
		}
		if err := emit("ext-coevolution", co.Render()); err != nil {
			return err
		}
		im, err := experiments.Impact(ctx)
		if err != nil {
			return err
		}
		if err := emit("ext-query-impact", im.Render()); err != nil {
			return err
		}
		if err := emit("ext-table-rigidity", experiments.TableRigidity(ctx).Render()); err != nil {
			return err
		}
		pe, err := experiments.PredictionEval(ctx, 5, seed)
		if err != nil {
			return err
		}
		if err := emit("ext-prediction-eval", pe.Render()); err != nil {
			return err
		}
		if f2 == nil {
			f2, err = experiments.Figure2(ctx)
			if err != nil {
				return err
			}
		}
		ca, err := experiments.CorrelationAgreement(ctx, f2)
		if err != nil {
			return err
		}
		if err := emit("ext-correlation-agreement", ca.Render()); err != nil {
			return err
		}
		xd, err := experiments.CrossDialect(seed)
		if err != nil {
			return err
		}
		if err := emit("ext-dialects", xd.Render()); err != nil {
			return err
		}
	}
	if htmlRep != nil {
		path := filepath.Join(outDir, "report.html")
		if err := os.WriteFile(path, []byte(htmlRep.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("HTML report written to %s\n", path)
	}
	return nil
}
