// Command reproduce regenerates every table and figure of the paper's
// evaluation from the calibrated synthetic corpus, printing them in paper
// order. With -ablation it also runs the extension analyses (label
// sensitivity, tree depth, unsupervised cross-check, co-evolution, query
// impact, table rigidity, prediction cross-validation).
//
// Usage:
//
//	reproduce                 # all paper artifacts, seed 1
//	reproduce -seed 7         # a different corpus instance
//	reproduce -ablation       # include the ablations and extensions
//	reproduce -only fig7      # a single artifact (t1 t2 fig1..fig7 s34 s52 s61 s62 s63)
//	reproduce -out artifacts  # also write every artifact to files (txt + svg)
//	reproduce -cache DIR      # memoize per-project analysis under DIR
//	reproduce -nocache        # disable the analysis cache
//
// The corpus analysis runs through the staged concurrent pipeline with a
// content-hash result cache (default: a "schemaevo" directory under the
// user cache dir), so re-runs of the same seed skip history and metrics
// recomputation entirely; the printed pipeline statistics show the cache
// hits.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"schemaevo/internal/experiments"
	"schemaevo/internal/pipeline"
	"schemaevo/internal/report"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "corpus generator seed")
		ablation = flag.Bool("ablation", false, "also run the ablation analyses")
		only     = flag.String("only", "", "run a single artifact (t1,t2,fig1..fig7,s34,s52,s61,s62,s63)")
		out      = flag.String("out", "", "directory to write artifact files into")
		cacheDir = flag.String("cache", "", "analysis cache directory (default: <user-cache>/schemaevo)")
		nocache  = flag.Bool("nocache", false, "disable the analysis cache")
	)
	flag.Parse()
	dir := *cacheDir
	if dir == "" && !*nocache {
		dir = defaultCacheDir()
	}
	if *nocache {
		dir = ""
	}
	if err := run(*seed, *ablation, strings.ToLower(*only), *out, dir); err != nil {
		fmt.Fprintln(os.Stderr, "reproduce:", err)
		os.Exit(1)
	}
}

// defaultCacheDir picks the per-user cache location; empty (= caching
// disabled) when the platform reports no user cache dir.
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "schemaevo")
}

func run(seed int64, ablation bool, only, outDir, cacheDir string) error {
	fmt.Printf("Generating the calibrated corpus (seed %d) and running the full pipeline...\n\n", seed)
	ctx, stats, err := experiments.NewPaperContextWithOptions(seed, pipeline.Options{CacheDir: cacheDir})
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", stats)
	fmt.Printf("Corpus: %d projects with lifetime > 12 months.\n\n", ctx.Corpus.Len())

	var htmlRep *report.HTMLReport
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
		htmlRep = report.NewHTMLReport(
			fmt.Sprintf("Time-Related Patterns of Schema Evolution — reproduction (seed %d)", seed))
	}
	want := func(key string) bool { return only == "" || only == key }
	emit := func(key, body string) error {
		fmt.Println(body)
		fmt.Println()
		if outDir == "" {
			return nil
		}
		htmlRep.AddText(key, body)
		return os.WriteFile(filepath.Join(outDir, key+".txt"), []byte(body+"\n"), 0o644)
	}

	if want("fig1") {
		f1 := experiments.Figure1(ctx)
		if err := emit("fig1", f1.Render()); err != nil {
			return err
		}
		if outDir != "" {
			if err := os.WriteFile(filepath.Join(outDir, "fig1.svg"), []byte(f1.SVG), 0o644); err != nil {
				return err
			}
			htmlRep.AddSVG("fig1 (chart)", f1.SVG)
		}
	}
	if want("t1") {
		if err := emit("t1", experiments.Table1(ctx).Render()); err != nil {
			return err
		}
	}
	if want("s34") {
		r, err := experiments.Section34(ctx)
		if err != nil {
			return err
		}
		if err := emit("s34", r.Render()); err != nil {
			return err
		}
	}
	var f2 *experiments.Figure2Result
	if want("fig2") {
		f2, err = experiments.Figure2(ctx)
		if err != nil {
			return err
		}
		if err := emit("fig2", f2.Render()); err != nil {
			return err
		}
	}
	if want("fig3") {
		f3 := experiments.Figure3(ctx)
		if err := emit("fig3", f3.Render()); err != nil {
			return err
		}
		if outDir != "" {
			for pattern, svg := range f3.SVGs {
				name := "fig3-" + strings.ReplaceAll(strings.ToLower(pattern.String()), " ", "-")
				if err := os.WriteFile(filepath.Join(outDir, name+".svg"), []byte(svg), 0o644); err != nil {
					return err
				}
			}
			for _, p := range experiments.Figure3Order(f3) {
				htmlRep.AddSVG("fig3: "+p.String(), f3.SVGs[p])
			}
		}
	}
	if want("fig4") {
		if err := emit("fig4", experiments.Figure4(ctx).Render()); err != nil {
			return err
		}
	}
	if want("t2") {
		if err := emit("t2", experiments.Table2(ctx).Render()); err != nil {
			return err
		}
	}
	if want("s52") {
		r, err := experiments.Section52(ctx)
		if err != nil {
			return err
		}
		if err := emit("s52", r.Render()); err != nil {
			return err
		}
	}
	if want("fig5") {
		r, err := experiments.Figure5(ctx)
		if err != nil {
			return err
		}
		if err := emit("fig5", r.Render()); err != nil {
			return err
		}
	}
	if want("fig6") {
		if err := emit("fig6", experiments.Figure6(ctx).Render()); err != nil {
			return err
		}
	}
	var f7 *experiments.Figure7Result
	if want("fig7") || want("s62") {
		f7, err = experiments.Figure7(ctx)
		if err != nil {
			return err
		}
	}
	if want("fig7") {
		if err := emit("fig7", f7.Render()); err != nil {
			return err
		}
	}
	if want("s61") {
		if err := emit("s61", experiments.Section61(ctx).Render()); err != nil {
			return err
		}
	}
	if want("s62") {
		if err := emit("s62", experiments.Section62(f7).Render()); err != nil {
			return err
		}
	}
	if want("s63") {
		if err := emit("s63", experiments.Section63(ctx).Render()); err != nil {
			return err
		}
	}

	if ablation {
		fmt.Println(strings.Repeat("=", 70))
		fmt.Println("ABLATIONS AND EXTENSIONS")
		fmt.Println(strings.Repeat("=", 70))
		fmt.Println()
		if err := emit("ablation-labels", experiments.LabelSensitivity(ctx).Render()); err != nil {
			return err
		}
		td, err := experiments.TreeDepth(ctx)
		if err != nil {
			return err
		}
		if err := emit("ablation-tree-depth", td.Render()); err != nil {
			return err
		}
		un, err := experiments.Unsupervised(ctx, seed)
		if err != nil {
			return err
		}
		if err := emit("ablation-kmeans", un.Render()); err != nil {
			return err
		}
		co, err := experiments.CoEvolution(ctx)
		if err != nil {
			return err
		}
		if err := emit("ext-coevolution", co.Render()); err != nil {
			return err
		}
		im, err := experiments.Impact(ctx)
		if err != nil {
			return err
		}
		if err := emit("ext-query-impact", im.Render()); err != nil {
			return err
		}
		if err := emit("ext-table-rigidity", experiments.TableRigidity(ctx).Render()); err != nil {
			return err
		}
		pe, err := experiments.PredictionEval(ctx, 5, seed)
		if err != nil {
			return err
		}
		if err := emit("ext-prediction-eval", pe.Render()); err != nil {
			return err
		}
		if f2 == nil {
			f2, err = experiments.Figure2(ctx)
			if err != nil {
				return err
			}
		}
		ca, err := experiments.CorrelationAgreement(ctx, f2)
		if err != nil {
			return err
		}
		if err := emit("ext-correlation-agreement", ca.Render()); err != nil {
			return err
		}
	}
	if htmlRep != nil {
		path := filepath.Join(outDir, "report.html")
		if err := os.WriteFile(path, []byte(htmlRep.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("HTML report written to %s\n", path)
	}
	return nil
}
