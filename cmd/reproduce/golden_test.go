package main

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden artifacts instead of diffing against
// them: go test ./cmd/reproduce -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenDir is the committed location of the expected artifacts.
const goldenDir = "../../testdata/golden"

// TestGoldenArtifacts runs `reproduce -only <key>` for the artifacts the
// paper's headline results hang on (Table 1, Table 2, Figure 1) at seed 1
// and diffs the emitted text against the committed golden files. Any
// silent drift in parsing, diffing, metrics, quantization or
// classification shows up here as a byte-level mismatch.
func TestGoldenArtifacts(t *testing.T) {
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()

	outDir := t.TempDir()
	for _, key := range []string{"t1", "t2", "fig1"} {
		if _, err := run(cfgFor(1, false, key, outDir, "")); err != nil {
			t.Fatalf("-only %s: %v", key, err)
		}
	}

	for _, key := range []string{"t1", "t2", "fig1"} {
		gotPath := filepath.Join(outDir, key+".txt")
		got, err := os.ReadFile(gotPath)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		goldenPath := filepath.Join(goldenDir, key+".txt")
		if *update {
			if err := os.MkdirAll(goldenDir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("%s: missing golden file (run with -update to create): %v", key, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: output drifted from %s;\nre-run with -update if the change is intended.\n--- got ---\n%s\n--- want ---\n%s",
				key, goldenPath, got, want)
		}
	}
}

// TestGoldenCachedRunMatches re-runs the same artifacts through a warm
// analysis cache and asserts byte-identical output: the cache must be
// invisible to every consumer.
func TestGoldenCachedRunMatches(t *testing.T) {
	old := os.Stdout
	null, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = null
	defer func() { os.Stdout = old; null.Close() }()

	cacheDir := t.TempDir()
	coldDir := t.TempDir()
	warmDir := t.TempDir()
	for _, outDir := range []string{coldDir, warmDir} {
		for _, key := range []string{"t1", "t2", "fig1"} {
			if _, err := run(cfgFor(1, false, key, outDir, cacheDir)); err != nil {
				t.Fatalf("%s: %v", key, err)
			}
		}
	}
	for _, key := range []string{"t1", "t2", "fig1"} {
		cold, err := os.ReadFile(filepath.Join(coldDir, key+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		warm, err := os.ReadFile(filepath.Join(warmDir, key+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if string(cold) != string(warm) {
			t.Errorf("%s: warm-cache output differs from cold-cache output", key)
		}
	}
}
