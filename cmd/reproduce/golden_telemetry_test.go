package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// normalizeJSON zeroes every number and empties every span-like array of
// unbounded length, keeping keys, nesting, strings and booleans — the
// *shape* of the document, which is what the golden file pins.
func normalizeJSON(v any) any {
	switch x := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, val := range x {
			out[k] = normalizeJSON(val)
		}
		return out
	case []any:
		out := make([]any, len(x))
		for i, val := range x {
			out[i] = normalizeJSON(val)
		}
		return out
	case float64:
		return 0
	default:
		return v
	}
}

// TestGoldenTelemetryShape pins the -telemetry-json document: schema
// version key, the three pipeline stages with their full counter set,
// the cache block, the event lists. Numbers are normalized to 0 (they
// vary run to run); any added, removed or renamed field shows up as a
// golden diff. Regenerate with -update after an intended schema change
// (and bump telemetry.ReportSchemaVersion).
func TestGoldenTelemetryShape(t *testing.T) {
	old := os.Stdout
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = null
	defer func() {
		os.Stdout = old
		null.Close()
	}()

	dir := t.TempDir()
	cfg := cfgFor(1, false, "t1", dir, "")
	cfg.telemetryJSON = filepath.Join(dir, "telemetry.json")
	if _, err := run(cfg); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(cfg.telemetryJSON)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("telemetry JSON does not parse: %v", err)
	}
	norm := normalizeJSON(doc).(map[string]any)
	// The schema version is the one number that must not drift silently.
	norm["schema_version"] = doc["schema_version"]
	got, err := json.MarshalIndent(norm, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	goldenPath := filepath.Join(goldenDir, "telemetry.json")
	if *update {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("telemetry JSON shape drifted from %s;\nre-run with -update (and bump ReportSchemaVersion) if intended.\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, got, want)
	}
}
