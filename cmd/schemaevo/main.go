// Command schemaevo analyzes one project's schema history and reports its
// time-related evolution pattern.
//
// Usage:
//
//	schemaevo -dir db/history/          # directory of NNNN_YYYY-MM-DD.sql snapshots
//	schemaevo -git .                    # a local git checkout (needs git on PATH)
//	schemaevo -repo project.json        # serialized repository (see corpusgen)
//	schemaevo -dir ... -svg chart.svg   # also write an SVG chart
//	schemaevo -dir ... -verbose         # include the per-version deltas
//	schemaevo -dir ... -tables          # per-table lifetime report
//	schemaevo -dir ... -queries q.sql   # replay a query workload over the history
//	schemaevo -dir ... -dialect auto    # per-file SQL dialect detection (or mysql/postgres/sqlite)
//	schemaevo -dir ... -project-timeout 30s  # abandon an analysis that gets stuck
//	schemaevo -dir ... -telemetry-json t.json  # write the run's telemetry report
//	schemaevo -dir ... -pprof 127.0.0.1:6060   # serve pprof + expvar + telemetry
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"schemaevo"
	"schemaevo/internal/gitrepo"
	"schemaevo/internal/query"
	"schemaevo/internal/sqlddl"
	"schemaevo/internal/tablestats"
	"schemaevo/internal/telemetry"
	"schemaevo/internal/vcs"
)

// options collects the command-line configuration.
type options struct {
	dir           string
	repo          string
	gitDir        string
	svgOut        string
	verbose       bool
	tables        bool
	queries       string
	cacheDir      string
	dialect       string
	timeout       time.Duration
	telemetryJSON string
	pprofAddr     string
}

func main() {
	var o options
	flag.StringVar(&o.dir, "dir", "", "directory of dated .sql schema snapshots")
	flag.StringVar(&o.repo, "repo", "", "path to a serialized repository (JSON)")
	flag.StringVar(&o.gitDir, "git", "", "path to a local git checkout to extract")
	flag.StringVar(&o.svgOut, "svg", "", "write the cumulative chart as SVG to this path")
	flag.BoolVar(&o.verbose, "verbose", false, "print per-version change details")
	flag.BoolVar(&o.tables, "tables", false, "print the per-table lifetime report")
	flag.StringVar(&o.queries, "queries", "", "file of ';'-separated SELECTs to replay over the history")
	flag.StringVar(&o.cacheDir, "cache", "", "memoize the analysis under this directory (re-runs of an unchanged history are instant)")
	flag.StringVar(&o.dialect, "dialect", "", "SQL dialect of the DDL: auto, generic, mysql, postgres or sqlite (default generic)")
	flag.DurationVar(&o.timeout, "project-timeout", 0, "abandon the analysis if it exceeds this deadline (0 disables)")
	flag.StringVar(&o.telemetryJSON, "telemetry-json", "", "write the run's telemetry report (stage timings, cache counters) to this path")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof, expvar and live telemetry on this address (e.g. 127.0.0.1:6060)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "schemaevo:", err)
		os.Exit(1)
	}
}

func analyze(o options, tel *telemetry.Collector) (*schemaevo.Analysis, error) {
	sources := 0
	for _, s := range []string{o.dir, o.repo, o.gitDir} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of -dir, -repo or -git is required")
	}
	var (
		r   *schemaevo.Repo
		err error
	)
	switch {
	case o.dir != "":
		r, err = vcs.ReadVersionDir(o.dir)
	case o.gitDir != "":
		if !gitrepo.Available() {
			return nil, fmt.Errorf("-git requires a git binary on the PATH")
		}
		r, err = gitrepo.Extract(o.gitDir, 0)
	default:
		r, err = schemaevo.LoadRepo(o.repo)
	}
	if err != nil {
		return nil, err
	}
	a, stats, err := schemaevo.AnalyzeRepoWithOptions(r,
		schemaevo.PipelineOptions{CacheDir: o.cacheDir, Dialect: o.dialect, ProjectTimeout: o.timeout, Telemetry: tel})
	if err != nil {
		// Attach the failure taxonomy so a lost analysis states what kind
		// of loss it was (parse / metrics / timeout / panic).
		if rep := stats.Degradation; rep.Degraded() {
			for _, f := range rep.Failures {
				err = fmt.Errorf("%w (failure kind: %s)", err, f.Kind)
			}
		}
		return nil, err
	}
	return a, nil
}

func run(o options) error {
	var tel *telemetry.Collector
	if o.telemetryJSON != "" || o.pprofAddr != "" {
		tel = telemetry.New()
	}
	if o.pprofAddr != "" {
		addr, err := telemetry.Serve(o.pprofAddr, tel)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "pprof: serving /debug/pprof, /debug/vars and /debug/telemetry on http://%s\n", addr)
	}
	a, err := analyze(o, tel)
	if err != nil {
		return err
	}
	if o.telemetryJSON != "" {
		defer func() {
			f, ferr := os.Create(o.telemetryJSON)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "schemaevo: telemetry:", ferr)
				return
			}
			werr := tel.WriteJSON(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, "schemaevo: telemetry:", werr)
			}
		}()
	}

	fmt.Println(a.Chart())
	m := a.Measures
	fmt.Printf("project:              %s\n", a.Project)
	fmt.Printf("dialect:              %s\n", a.History.Dialect)
	fmt.Printf("pattern:              %s (family: %s)\n", a.Pattern, a.Family)
	fmt.Printf("                      %s\n", schemaevo.Describe(a.Pattern))
	if !a.Exact {
		fmt.Printf("                      (nearest match; no formal definition fits exactly)\n")
	}
	fmt.Printf("project life (PUP):   %d months\n", m.PUPMonths)
	fmt.Printf("schema birth:         month %d (%.0f%% of life), %.0f%% of total change\n",
		m.BirthMonth, m.BirthPct*100, m.BirthVolumePct*100)
	fmt.Printf("top band (90%%):       month %d (%.0f%% of life)\n", m.TopBandMonth, m.TopBandPct*100)
	fmt.Printf("birth→top interval:   %.0f%% of life (vault: %v)\n", m.IntervalBirthToTopPct*100, m.HasVault)
	fmt.Printf("active growth months: %d\n", m.ActiveGrowthMonths)
	fmt.Printf("total activity:       %d attributes (%d expansion, %d maintenance)\n",
		m.TotalActivity, m.Expansion, m.Maintenance)
	fmt.Printf("schema size:          %d tables / %d attributes at birth → %d / %d at end\n",
		m.TablesAtBirth, m.AttrsAtBirth, m.TablesAtEnd, m.AttrsAtEnd)
	fmt.Printf("labels:               birth-vol=%s birth=%s top=%s interval=%s tail=%s\n",
		a.Labels.BirthVolume, a.Labels.BirthTiming, a.Labels.TopBandPoint,
		a.Labels.IntervalBirthToTop, a.Labels.IntervalTopToEnd)
	sum := a.History.Summarize()
	fmt.Printf("timeline:             %d versions (%d with change), longest dormancy %d months\n",
		sum.Versions, sum.ActiveVersions, sum.LongestDormancy)

	if o.verbose {
		fmt.Println("\nversions:")
		for _, v := range a.History.Versions {
			d := v.Delta
			fmt.Printf("  v%03d %s  +%d tables -%d tables  born=%d injected=%d deleted=%d ejected=%d type=%d key=%d\n",
				v.Seq, v.Time.Format("2006-01-02"),
				len(d.TablesAdded), len(d.TablesDropped),
				d.NBornWithTable, d.NInjected, d.NDeletedWithTable,
				d.NEjected, d.NTypeChanged, d.NKeyChanged)
		}
	}

	if o.tables {
		fmt.Println("\ntables:")
		for _, tl := range tablestats.Analyze(a.History) {
			life := "alive"
			if !tl.Survived() {
				life = fmt.Sprintf("dropped v%d", tl.DiedVersion)
			}
			fmt.Printf("  %-24s born v%d (month %d, %d attrs)  %-12s  updates: %d\n",
				tl.Name, tl.BornVersion, tl.BornMonth, tl.AttrsAtBirth, life, tl.Updates())
		}
		g := tablestats.GranularityOf(a.History)
		fmt.Printf("  change granularity: %.0f%% whole-table, %.0f%% in-place\n",
			g.TableGrainShare()*100, (1-g.TableGrainShare())*100)
	}

	if o.queries != "" {
		if err := replayQueries(o.queries, a); err != nil {
			return err
		}
	}

	if o.svgOut != "" {
		if err := os.WriteFile(o.svgOut, []byte(a.ChartSVG()), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nSVG chart written to %s\n", o.svgOut)
	}
	return nil
}

// replayQueries parses a workload file and reports which schema versions
// break which queries.
func replayQueries(path string, a *schemaevo.Analysis) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	stmts := sqlddl.SplitStatements(string(data))
	queries, err := query.ParseAll(stmts)
	if err != nil {
		return err
	}
	fmt.Printf("\nquery workload (%d queries):\n", len(queries))
	vis := query.OverHistory(a.History, queries)
	if len(vis) == 0 {
		fmt.Println("  no query affected by any schema version")
		return nil
	}
	for _, vi := range vis {
		when := a.History.Versions[vi.Version].Time.Format("2006-01-02")
		for _, im := range vi.Impacts {
			fmt.Printf("  v%03d %s  %s\n", vi.Version, when, im)
		}
	}
	fmt.Printf("  total broken-query incidents: %d\n", query.TotalBreakages(vis))
	return nil
}
