package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeSnapshots(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"0000_2017-03-01.sql": "CREATE TABLE a (x INT, y TEXT);",
		"0001_2017-05-01.sql": "CREATE TABLE a (x INT, y TEXT, z DATE); CREATE TABLE b (p INT);",
		"0002_2018-09-01.sql": "CREATE TABLE a (x INT, y TEXT, z DATE);",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestRunDirVerboseTables(t *testing.T) {
	dir := writeSnapshots(t)
	if err := run(options{dir: dir, verbose: true, tables: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithSVG(t *testing.T) {
	dir := writeSnapshots(t)
	svg := filepath.Join(t.TempDir(), "chart.svg")
	if err := run(options{dir: dir, svgOut: svg}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty SVG written")
	}
}

func TestRunWithQueries(t *testing.T) {
	dir := writeSnapshots(t)
	qfile := filepath.Join(t.TempDir(), "workload.sql")
	workload := "SELECT x, y FROM a;\nSELECT p FROM b;\n"
	if err := os.WriteFile(qfile, []byte(workload), 0o644); err != nil {
		t.Fatal(err)
	}
	// Table b is dropped in the last snapshot: the replay must not fail.
	if err := run(options{dir: dir, queries: qfile}); err != nil {
		t.Fatal(err)
	}
	if err := run(options{dir: dir, queries: filepath.Join(dir, "missing.sql")}); err == nil {
		t.Error("missing workload file should error")
	}
}

func TestRunArgErrors(t *testing.T) {
	if err := run(options{}); err == nil {
		t.Error("no input should error")
	}
	if err := run(options{dir: "a", repo: "b"}); err == nil {
		t.Error("two inputs should error")
	}
	if err := run(options{dir: filepath.Join(t.TempDir(), "missing")}); err == nil {
		t.Error("missing dir should error")
	}
}
