// Command benchpipe measures the analysis-pipeline throughput on the
// calibrated 151-project corpus and writes the results as JSON, so every
// PR leaves a comparable performance record behind.
//
// Five variants are timed (best of -runs repetitions each, corpus
// generation excluded):
//
//   - sequential:    Corpus.Analyze, one project at a time
//   - parallel:      Corpus.AnalyzeParallel at GOMAXPROCS workers
//   - pipeline:      the staged pipeline, no cache
//   - pipeline-cold: the staged pipeline with an empty result cache
//   - pipeline-warm: the staged pipeline with a fully warm result cache
//
// Beside wall time, every variant records its allocation trajectory
// (allocs/project and bytes/project, measured over the timed runs), so the
// BENCH artifact captures memory cost, not just speed.
//
// Beyond the five ambient-GOMAXPROCS variants, a scaling matrix re-times
// the sequential and pipeline variants at each GOMAXPROCS value of
// -matrix (default 1,2,4,8, adjusted in-process), recording the
// pipeline-vs-sequential ratio per core count — the artifact therefore
// shows whether stage parallelism pays at every width, not just the
// recording machine's.
//
// Usage:
//
//	benchpipe                      # seed 1, 3 runs, writes BENCH_pipeline.json
//	benchpipe -seed 7 -runs 5 -out bench.json
//	benchpipe -matrix 1,2          # trim the GOMAXPROCS scaling matrix
//	benchpipe -telemetry           # run with telemetry collection enabled
//	benchpipe -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	benchpipe -check               # regression gate against BENCH_pipeline.json
//
// With -telemetry every timed variant carries a live telemetry collector,
// so the JSON additionally records each variant's per-stage breakdown —
// and comparing best_ns against a plain run measures the telemetry
// overhead itself (the CI smoke does exactly that).
//
// With -check, no JSON is written: the regression gate re-measures and
// fails (non-zero exit) when any of the following hold, each with the
// -tolerance fraction (default 10%) of slack:
//
//   - sequential throughput dropped below the committed baseline, or its
//     allocs/project grew (the original gate);
//   - the pipeline variant is slower than sequential at the current
//     GOMAXPROCS — the shard-per-core design makes the pipeline a
//     superset of the sequential loop, so it may never underperform it
//     (CI runs this gate at GOMAXPROCS 1 and 2);
//   - the auto-detecting pipeline over any dialect-restyled corpus falls
//     more than the tolerance below the generic pipeline's bytes/sec;
//   - the warm-cache path allocates more per project than the cold path —
//     decode must stay cheaper than recomputation;
//   - a committed matrix row already records pipeline < sequential
//     (oversubscribed rows, where the width exceeded the recording
//     machine's cores, are informational only).
//
// This is the CI bench-regression / bench-matrix gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"schemaevo/internal/corpus"
	"schemaevo/internal/pipeline"
	"schemaevo/internal/quantize"
	"schemaevo/internal/synth"
	"schemaevo/internal/telemetry"
)

// result is one timed variant in the emitted JSON.
type result struct {
	Name           string  `json:"name"`
	BestNs         int64   `json:"best_ns"`
	BestMs         float64 `json:"best_ms"`
	ProjectsPerSec float64 `json:"projects_per_sec"`
	// SpeedupVsSequential is wall-clock sequential time over this
	// variant's time (higher is better; 1.0 for sequential itself).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
	// CPUNs and ProjectsPerCPUSec are the best run measured in process CPU
	// time (user+system) instead of wall clock. CPU time is insensitive to
	// co-tenant load on shared machines, so the -check regression gate
	// compares these when the baseline records them. Zero when the platform
	// cannot measure CPU time.
	CPUNs             int64   `json:"cpu_ns,omitempty"`
	ProjectsPerCPUSec float64 `json:"projects_per_cpu_sec,omitempty"`
	// AllocsPerProject and BytesPerProject are the heap allocation count
	// and allocated bytes per analyzed project, averaged over the timed
	// runs (corpus generation excluded).
	AllocsPerProject float64 `json:"allocs_per_project"`
	BytesPerProject  float64 `json:"bytes_per_project"`
	// CacheHitRate is hits/(hits+misses) of the variant's last timed run
	// (0 for the cacheless variants).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// StageBreakdown is the per-stage telemetry of the variant's last
	// timed run; present only with -telemetry.
	StageBreakdown []telemetry.StageReport `json:"stage_breakdown,omitempty"`
}

// matrixRow is one GOMAXPROCS width of the scaling matrix: the
// sequential and pipeline variants re-timed with the scheduler width
// pinned in-process. PipelineVsSequential > 1 means the shard-per-core
// pipeline beat the plain loop at that width; the -check gate fails if a
// committed row ever records the pipeline losing.
type matrixRow struct {
	GOMAXPROCS               int     `json:"gomaxprocs"`
	SequentialProjectsPerSec float64 `json:"sequential_projects_per_sec"`
	PipelineProjectsPerSec   float64 `json:"pipeline_projects_per_sec"`
	PipelineVsSequential     float64 `json:"pipeline_vs_sequential"`
	PipelineAllocsPerProject float64 `json:"pipeline_allocs_per_project"`
	// Oversubscribed marks rows whose width exceeds the recording
	// machine's physical core count: the shards time-slice one CPU, so
	// the ratio shows scheduling overhead, not what a machine of that
	// width would do. The -check gate treats such rows as informational.
	Oversubscribed bool `json:"oversubscribed,omitempty"`
}

// dialectRow times the cacheless pipeline with per-file dialect
// auto-detection over the corpus restyled in one concrete SQL dialect.
// The restyled corpora carry more raw DDL text than the generic one
// (quoting, headers, engine clauses), so raw duration ratios conflate
// input size with adapter overhead. VsGenericPipeline is therefore
// byte-normalized: dialect bytes/sec over generic bytes/sec, both timed
// in the same process. The -check gate bounds how far below 1.0 it may
// fall, so detection plus adapter dispatch can never silently grow into
// a per-byte cost.
type dialectRow struct {
	Dialect           string  `json:"dialect"`
	ProjectsPerSec    float64 `json:"projects_per_sec"`
	MBPerSec          float64 `json:"mb_per_sec"`
	AllocsPerProject  float64 `json:"allocs_per_project"`
	VsGenericPipeline float64 `json:"vs_generic_pipeline"`
}

// report is the full BENCH_pipeline.json document.
type report struct {
	GeneratedBy string         `json:"generated_by"`
	Date        string         `json:"date"`
	Seed        int64          `json:"seed"`
	Projects    int            `json:"projects"`
	Cores       int            `json:"cores"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Runs        int            `json:"runs"`
	Telemetry   bool           `json:"telemetry"`
	Results     []result       `json:"results"`
	Matrix      []matrixRow    `json:"matrix,omitempty"`
	Dialects    []dialectRow   `json:"dialects,omitempty"`
	WarmStats   pipeline.Stats `json:"warm_cache_stats"`
	Note        string         `json:"note,omitempty"`
	// Previous summarizes the artifact this run replaced (same file, prior
	// recording), so the before/after trajectory of a performance change is
	// readable from the artifact alone.
	Previous *priorSummary `json:"previous,omitempty"`
}

// priorResult is the headline slice of one replaced variant entry.
type priorResult struct {
	Name              string  `json:"name"`
	ProjectsPerSec    float64 `json:"projects_per_sec"`
	ProjectsPerCPUSec float64 `json:"projects_per_cpu_sec,omitempty"`
	AllocsPerProject  float64 `json:"allocs_per_project,omitempty"`
}

// priorSummary preserves the replaced artifact's headline numbers.
type priorSummary struct {
	Date    string        `json:"date"`
	Seed    int64         `json:"seed"`
	Results []priorResult `json:"results"`
}

// summarizePrior reads the artifact about to be replaced and trims it to
// its headline numbers; a missing or unreadable file yields nil.
func summarizePrior(path string) *priorSummary {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var old report
	if err := json.Unmarshal(data, &old); err != nil || len(old.Results) == 0 {
		return nil
	}
	p := &priorSummary{Date: old.Date, Seed: old.Seed}
	for _, r := range old.Results {
		p.Results = append(p.Results, priorResult{
			Name:              r.Name,
			ProjectsPerSec:    r.ProjectsPerSec,
			ProjectsPerCPUSec: r.ProjectsPerCPUSec,
			AllocsPerProject:  r.AllocsPerProject,
		})
	}
	return p
}

func main() {
	var (
		seed       = flag.Int64("seed", 1, "corpus generator seed")
		runs       = flag.Int("runs", 3, "repetitions per variant (best run is reported)")
		out        = flag.String("out", "BENCH_pipeline.json", "output JSON path")
		tele       = flag.Bool("telemetry", false, "attach a telemetry collector to every timed run (records stage breakdowns; compare best_ns with a plain run to measure overhead)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the timed variants to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (taken after the timed variants) to this file")
		check      = flag.Bool("check", false, "regression gate: re-measure and fail on any throughput/allocation regression vs the -out baseline")
		tolerance  = flag.Float64("tolerance", 0.10, "with -check, the fractional regression allowed before failing")
		matrix     = flag.String("matrix", "1,2,4,8", "comma-separated GOMAXPROCS widths for the scaling matrix (empty disables)")
	)
	flag.Parse()
	widths, err := parseMatrix(*matrix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchpipe:", err)
		os.Exit(1)
	}
	if *check {
		if err := runCheck(*out, *runs, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchpipe:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*seed, *runs, *out, *tele, *cpuprofile, *memprofile, widths); err != nil {
		fmt.Fprintln(os.Stderr, "benchpipe:", err)
		os.Exit(1)
	}
}

// parseMatrix turns the -matrix flag into GOMAXPROCS widths.
func parseMatrix(s string) ([]int, error) {
	var widths []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		g, err := strconv.Atoi(part)
		if err != nil || g < 1 {
			return nil, fmt.Errorf("bad -matrix width %q: want positive integers", part)
		}
		widths = append(widths, g)
	}
	return widths, nil
}

// freshCorpus regenerates the corpus; analysis mutates projects, so every
// timed run gets its own copy (generation time is excluded from timings).
func freshCorpus(seed int64) (*corpus.Corpus, error) {
	return synth.PaperCorpus(seed)
}

// corpusGen produces a fresh corpus per timed run. genericGen is the
// default; dialect variants time the same seed's corpus restyled in a
// concrete SQL dialect.
type corpusGen func() (*corpus.Corpus, error)

func genericGen(seed int64) corpusGen {
	return func() (*corpus.Corpus, error) { return freshCorpus(seed) }
}

func dialectGen(seed int64, name string) corpusGen {
	return func() (*corpus.Corpus, error) { return synth.PaperCorpusDialect(seed, name) }
}

// variantOutcome carries what one variant's last timed run observed.
type variantOutcome struct {
	stats pipeline.Stats
	tel   *telemetry.Collector
	// allocsPerRun and bytesPerRun are the mean heap allocations and bytes
	// per timed run (mallocs/total-alloc deltas around fn only).
	allocsPerRun float64
	bytesPerRun  float64
}

// measure times fn over runs repetitions of the corpus analysis and
// returns the best wall-clock duration, the best CPU-time duration (zero
// when unmeasurable), and the last run's outcome. With withTel, every run
// carries a fresh telemetry collector (its cost is thus included in the
// timing — the point of the overhead comparison).
func measure(gen corpusGen, runs int, withTel bool, fn func(*corpus.Corpus, *telemetry.Collector) (pipeline.Stats, error)) (time.Duration, time.Duration, variantOutcome, error) {
	best, bestCPU := time.Duration(0), time.Duration(0)
	var last variantOutcome
	var totalAllocs, totalBytes uint64
	var ms0, ms1 runtime.MemStats
	for i := 0; i < runs; i++ {
		c, err := gen()
		if err != nil {
			return 0, 0, last, err
		}
		if withTel {
			last.tel = telemetry.New()
		}
		runtime.ReadMemStats(&ms0)
		cpu0 := processCPUTime()
		start := time.Now()
		if last.stats, err = fn(c, last.tel); err != nil {
			return 0, 0, last, err
		}
		elapsed := time.Since(start)
		cpu := processCPUTime() - cpu0
		runtime.ReadMemStats(&ms1)
		totalAllocs += ms1.Mallocs - ms0.Mallocs
		totalBytes += ms1.TotalAlloc - ms0.TotalAlloc
		if best == 0 || elapsed < best {
			best = elapsed
		}
		if cpu > 0 && (bestCPU == 0 || cpu < bestCPU) {
			bestCPU = cpu
		}
	}
	last.allocsPerRun = float64(totalAllocs) / float64(runs)
	last.bytesPerRun = float64(totalBytes) / float64(runs)
	return best, bestCPU, last, nil
}

// sequentialFn and pipelineFn are the two variants the scaling matrix
// and the -check gate re-time (cacheless, no telemetry).
func sequentialFn(c *corpus.Corpus, _ *telemetry.Collector) (pipeline.Stats, error) {
	return pipeline.Stats{}, c.Analyze(quantize.DefaultScheme())
}

func pipelineFn(c *corpus.Corpus, tel *telemetry.Collector) (pipeline.Stats, error) {
	return pipeline.Run(context.Background(), c, pipeline.Options{Telemetry: tel})
}

// autoPipelineFn is the pipeline with per-file dialect auto-detection —
// the configuration the dialect rows time.
func autoPipelineFn(c *corpus.Corpus, tel *telemetry.Collector) (pipeline.Stats, error) {
	return pipeline.Run(context.Background(), c, pipeline.Options{Dialect: "auto", Telemetry: tel})
}

// benchDialects are the concrete dialect corpora timed per artifact.
var benchDialects = []string{"mysql", "postgres", "sqlite"}

// corpusDDLBytes sums the raw DDL text the pipeline lexes for one
// corpus: every version of every DDL file of every project.
func corpusDDLBytes(c *corpus.Corpus) int {
	total := 0
	for _, p := range c.Projects {
		for _, path := range p.Repo.DDLPaths() {
			for _, fv := range p.Repo.FileHistory(path) {
				total += len(fv.Content)
			}
		}
	}
	return total
}

// measureDialects times the auto-detecting cacheless pipeline over the
// corpus restyled in each concrete dialect, relative to the generic
// pipeline duration measured in the same process. Ratios are
// byte-normalized (see dialectRow).
func measureDialects(seed int64, runs, n int, genericPipe time.Duration) ([]dialectRow, error) {
	generic, err := freshCorpus(seed)
	if err != nil {
		return nil, err
	}
	genericBPS := float64(corpusDDLBytes(generic)) / genericPipe.Seconds()
	var rows []dialectRow
	for _, name := range benchDialects {
		c, err := synth.PaperCorpusDialect(seed, name)
		if err != nil {
			return nil, fmt.Errorf("dialect %s: %w", name, err)
		}
		bytes := corpusDDLBytes(c)
		d, _, oc, err := measure(dialectGen(seed, name), runs, false, autoPipelineFn)
		if err != nil {
			return nil, fmt.Errorf("dialect %s: %w", name, err)
		}
		bps := float64(bytes) / d.Seconds()
		row := dialectRow{
			Dialect:           name,
			ProjectsPerSec:    float64(n) / d.Seconds(),
			MBPerSec:          bps / 1e6,
			AllocsPerProject:  oc.allocsPerRun / float64(n),
			VsGenericPipeline: bps / genericBPS,
		}
		rows = append(rows, row)
		fmt.Printf("dialect %-9s %12v  (%.0f projects/sec, %.1f MB/s, %.2fx of generic bytes/sec)\n",
			name, d, row.ProjectsPerSec, row.MBPerSec, row.VsGenericPipeline)
	}
	return rows, nil
}

// measureMatrix re-times the sequential and pipeline variants with
// GOMAXPROCS pinned to each requested width (restored afterwards). The
// pipeline's shard count follows GOMAXPROCS, so each row shows what a
// machine of that width would see — modulo oversubscription when the
// width exceeds the physical core count, which still exercises the
// scheduling but cannot show real speedup.
func measureMatrix(seed int64, runs, n int, widths []int) ([]matrixRow, error) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var rows []matrixRow
	for _, g := range widths {
		runtime.GOMAXPROCS(g)
		seqD, _, _, err := measure(genericGen(seed), runs, false, sequentialFn)
		if err != nil {
			return nil, fmt.Errorf("matrix sequential at GOMAXPROCS=%d: %w", g, err)
		}
		pipeD, _, pipeOC, err := measure(genericGen(seed), runs, false, pipelineFn)
		if err != nil {
			return nil, fmt.Errorf("matrix pipeline at GOMAXPROCS=%d: %w", g, err)
		}
		row := matrixRow{
			GOMAXPROCS:               g,
			SequentialProjectsPerSec: float64(n) / seqD.Seconds(),
			PipelineProjectsPerSec:   float64(n) / pipeD.Seconds(),
			PipelineVsSequential:     seqD.Seconds() / pipeD.Seconds(),
			PipelineAllocsPerProject: pipeOC.allocsPerRun / float64(n),
			Oversubscribed:           g > runtime.NumCPU(),
		}
		rows = append(rows, row)
		note := ""
		if row.Oversubscribed {
			note = "  [oversubscribed]"
		}
		fmt.Printf("matrix GOMAXPROCS=%d: sequential %.0f projects/sec, pipeline %.0f (%.2fx)%s\n",
			g, row.SequentialProjectsPerSec, row.PipelineProjectsPerSec, row.PipelineVsSequential, note)
	}
	return rows, nil
}

func run(seed int64, runs int, out string, withTel bool, cpuprofile, memprofile string, widths []int) error {
	probe, err := freshCorpus(seed)
	if err != nil {
		return err
	}
	n := probe.Len()
	rep := report{
		GeneratedBy: "cmd/benchpipe",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Seed:        seed,
		Projects:    n,
		Cores:       runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Runs:        runs,
		Telemetry:   withTel,
	}
	if rep.Cores < 4 {
		rep.Note = fmt.Sprintf(
			"measured on %d core(s): stage parallelism cannot exceed 1x here; the warm-cache variant shows the caching win",
			rep.Cores)
	}

	cacheRoot, err := os.MkdirTemp("", "benchpipe-cache-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheRoot)
	warmDir := filepath.Join(cacheRoot, "warm")

	variants := []struct {
		name string
		fn   func(*corpus.Corpus, *telemetry.Collector) (pipeline.Stats, error)
	}{
		{"sequential", sequentialFn},
		{"parallel", func(c *corpus.Corpus, tel *telemetry.Collector) (pipeline.Stats, error) {
			return pipeline.Stats{}, c.AnalyzeParallelObserved(quantize.DefaultScheme(), 0, tel)
		}},
		{"pipeline", pipelineFn},
		{"pipeline-cold", func(c *corpus.Corpus, tel *telemetry.Collector) (pipeline.Stats, error) {
			dir, err := os.MkdirTemp(cacheRoot, "cold-")
			if err != nil {
				return pipeline.Stats{}, err
			}
			return pipeline.Run(context.Background(), c, pipeline.Options{CacheDir: dir, Telemetry: tel})
		}},
		{"pipeline-warm", func(c *corpus.Corpus, tel *telemetry.Collector) (pipeline.Stats, error) {
			return pipeline.Run(context.Background(), c, pipeline.Options{CacheDir: warmDir, Telemetry: tel})
		}},
	}

	// Prewarm the warm-cache directory once, outside the timings.
	prewarm, err := freshCorpus(seed)
	if err != nil {
		return err
	}
	if _, err := pipeline.Run(context.Background(), prewarm, pipeline.Options{CacheDir: warmDir}); err != nil {
		return err
	}

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	durations := map[string]time.Duration{}
	cpuDurations := map[string]time.Duration{}
	outcomes := map[string]variantOutcome{}
	for _, v := range variants {
		d, cpu, oc, err := measure(genericGen(seed), runs, withTel, v.fn)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		durations[v.name] = d
		cpuDurations[v.name] = cpu
		outcomes[v.name] = oc
		fmt.Printf("%-14s %12v  (%.0f projects/sec, %.0f allocs/project)\n",
			v.name, d, float64(n)/d.Seconds(), oc.allocsPerRun/float64(n))
	}

	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return err
		}
	}

	if len(widths) > 0 {
		if rep.Matrix, err = measureMatrix(seed, runs, n, widths); err != nil {
			return err
		}
	}

	if rep.Dialects, err = measureDialects(seed, runs, n, durations["pipeline"]); err != nil {
		return err
	}

	seq := durations["sequential"]
	for _, v := range variants {
		d := durations[v.name]
		oc := outcomes[v.name]
		r := result{
			Name:                v.name,
			BestNs:              d.Nanoseconds(),
			BestMs:              float64(d.Nanoseconds()) / 1e6,
			ProjectsPerSec:      float64(n) / d.Seconds(),
			SpeedupVsSequential: seq.Seconds() / d.Seconds(),
			AllocsPerProject:    oc.allocsPerRun / float64(n),
			BytesPerProject:     oc.bytesPerRun / float64(n),
		}
		if cpu := cpuDurations[v.name]; cpu > 0 {
			r.CPUNs = cpu.Nanoseconds()
			r.ProjectsPerCPUSec = float64(n) / cpu.Seconds()
		}
		if probes := oc.stats.CacheHits + oc.stats.CacheMisses; probes > 0 {
			r.CacheHitRate = float64(oc.stats.CacheHits) / float64(probes)
		}
		if snap := oc.tel.Snapshot(); snap != nil {
			r.StageBreakdown = snap.Stages
		}
		rep.Results = append(rep.Results, r)
	}

	// Record the warm-cache hit counters as proof the cache short-circuits
	// recomputation.
	final, err := freshCorpus(seed)
	if err != nil {
		return err
	}
	rep.WarmStats, err = pipeline.Run(context.Background(), final, pipeline.Options{CacheDir: warmDir})
	if err != nil {
		return err
	}

	rep.Previous = summarizePrior(out)
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (warm cache: %d/%d hits)\n", out, rep.WarmStats.CacheHits, rep.WarmStats.Projects)
	return nil
}

// runCheck is the CI regression gate. It re-measures on the baseline's
// seed and enforces, each with the tolerance fraction of slack:
//
//  1. sequential throughput and allocs/project vs the committed baseline;
//  2. pipeline >= sequential at the current GOMAXPROCS (the shard-per-core
//     pipeline degenerates to the sequential loop at one shard, so losing
//     to it is a bug, not a trade-off);
//  3. the auto-detecting pipeline over each dialect-restyled corpus stays
//     within the tolerance of the generic pipeline's bytes/sec
//     (byte-normalized in-process ratio);
//  4. warm-cache allocs/project <= cold (decode must stay cheaper than
//     recomputation);
//  5. no committed non-oversubscribed matrix row records pipeline <
//     sequential (static check of the artifact itself).
func runCheck(baselinePath string, runs int, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	var baseSeq *result
	for i := range base.Results {
		if base.Results[i].Name == "sequential" {
			baseSeq = &base.Results[i]
		}
	}
	if baseSeq == nil {
		return fmt.Errorf("baseline %s has no sequential entry", baselinePath)
	}

	probe, err := freshCorpus(base.Seed)
	if err != nil {
		return err
	}
	n := probe.Len()
	d, cpu, oc, err := measure(genericGen(base.Seed), runs, false, sequentialFn)
	if err != nil {
		return err
	}
	// Prefer CPU-time throughput when both the baseline and this machine
	// measure it: wall clock on shared CI runners swings with co-tenant
	// load, while CPU seconds per project track only the code.
	gotPPS := float64(n) / d.Seconds()
	basePPS, clock := baseSeq.ProjectsPerSec, "wall"
	if baseSeq.ProjectsPerCPUSec > 0 && cpu > 0 {
		gotPPS = float64(n) / cpu.Seconds()
		basePPS, clock = baseSeq.ProjectsPerCPUSec, "cpu"
	}
	gotAllocs := oc.allocsPerRun / float64(n)
	fmt.Printf("sequential (%s clock): baseline %.0f projects/sec, now %.0f (%.2fx); baseline %.0f allocs/project, now %.0f\n",
		clock, basePPS, gotPPS, gotPPS/basePPS, baseSeq.AllocsPerProject, gotAllocs)
	if gotPPS < basePPS*(1-tolerance) {
		return fmt.Errorf("throughput regression: %.0f projects/sec (%s clock) is more than %.0f%% below the baseline %.0f",
			gotPPS, clock, tolerance*100, basePPS)
	}
	// Allocation budgets only gate once the baseline records them (older
	// artifacts carry zero); CPU-noise tolerance applies equally.
	if baseSeq.AllocsPerProject > 0 && gotAllocs > baseSeq.AllocsPerProject*(1+tolerance) {
		return fmt.Errorf("allocation regression: %.0f allocs/project is more than %.0f%% above the baseline %.0f",
			gotAllocs, tolerance*100, baseSeq.AllocsPerProject)
	}

	// Gate 2: the pipeline may not lose to the sequential loop at this
	// machine's GOMAXPROCS. Wall clock on both sides of one process, so
	// co-tenant noise largely cancels.
	pipeD, _, _, err := measure(genericGen(base.Seed), runs, false, pipelineFn)
	if err != nil {
		return err
	}
	pipeVsSeq := d.Seconds() / pipeD.Seconds()
	fmt.Printf("pipeline vs sequential at GOMAXPROCS=%d: %.2fx\n", runtime.GOMAXPROCS(0), pipeVsSeq)
	if pipeVsSeq < 1-tolerance {
		return fmt.Errorf("pipeline regression: %.2fx of sequential at GOMAXPROCS=%d (must stay >= %.2f)",
			pipeVsSeq, runtime.GOMAXPROCS(0), 1-tolerance)
	}

	// Gate 3: the auto-detecting pipeline over each dialect corpus may not
	// fall below the generic pipeline's bytes/sec by more than the
	// tolerance. The ratio is byte-normalized and measured within one
	// process, so machine speed and the dialect corpora's honest size
	// delta both cancel — what remains is detection plus adapter
	// dispatch, bounded wherever the gate runs. Baselines without
	// dialect rows predate the gate; the re-measurement still applies.
	dialectFloor := 1 - tolerance
	dialectRows, err := measureDialects(base.Seed, runs, n, pipeD)
	if err != nil {
		return err
	}
	for _, row := range dialectRows {
		if row.VsGenericPipeline < dialectFloor {
			return fmt.Errorf("dialect regression: %s corpus runs at %.2fx of the generic pipeline's bytes/sec (must stay >= %.2f)",
				row.Dialect, row.VsGenericPipeline, dialectFloor)
		}
	}

	// Gate 4: warm-cache decode must allocate no more per project than
	// cold recomputation. Cold runs get fresh directories; the warm run
	// hits a directory prewarmed outside the measurement.
	cacheRoot, err := os.MkdirTemp("", "benchpipe-check-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheRoot)
	_, _, coldOC, err := measure(genericGen(base.Seed), runs, false, func(c *corpus.Corpus, _ *telemetry.Collector) (pipeline.Stats, error) {
		dir, err := os.MkdirTemp(cacheRoot, "cold-")
		if err != nil {
			return pipeline.Stats{}, err
		}
		return pipeline.Run(context.Background(), c, pipeline.Options{CacheDir: dir})
	})
	if err != nil {
		return err
	}
	warmDir := filepath.Join(cacheRoot, "warm")
	prewarm, err := freshCorpus(base.Seed)
	if err != nil {
		return err
	}
	if _, err := pipeline.Run(context.Background(), prewarm, pipeline.Options{CacheDir: warmDir}); err != nil {
		return err
	}
	_, _, warmOC, err := measure(genericGen(base.Seed), runs, false, func(c *corpus.Corpus, _ *telemetry.Collector) (pipeline.Stats, error) {
		return pipeline.Run(context.Background(), c, pipeline.Options{CacheDir: warmDir})
	})
	if err != nil {
		return err
	}
	if warmOC.stats.CacheHits != n {
		return fmt.Errorf("warm run hit the cache for %d of %d projects", warmOC.stats.CacheHits, n)
	}
	coldAllocs := coldOC.allocsPerRun / float64(n)
	warmAllocs := warmOC.allocsPerRun / float64(n)
	fmt.Printf("allocs/project: cold %.0f, warm %.0f (%.2fx)\n", coldAllocs, warmAllocs, warmAllocs/coldAllocs)
	if warmAllocs > coldAllocs*(1+tolerance) {
		return fmt.Errorf("warm-cache allocation regression: %.0f allocs/project warm vs %.0f cold — decode is allocating more than recomputation",
			warmAllocs, coldAllocs)
	}

	// Gate 5: the committed artifact itself may not record a width where
	// the pipeline loses to the sequential loop. Oversubscribed rows
	// (width beyond the recording machine's cores) measure scheduler
	// thrash, not real scaling, and are informational only.
	for _, row := range base.Matrix {
		if row.Oversubscribed || row.GOMAXPROCS > base.Cores {
			continue
		}
		if row.PipelineVsSequential < 1-tolerance {
			return fmt.Errorf("baseline matrix records pipeline at %.2fx of sequential at GOMAXPROCS=%d — re-record after fixing",
				row.PipelineVsSequential, row.GOMAXPROCS)
		}
	}
	fmt.Println("bench check ok")
	return nil
}
