// Command benchpipe measures the analysis-pipeline throughput on the
// calibrated 151-project corpus and writes the results as JSON, so every
// PR leaves a comparable performance record behind.
//
// Five variants are timed (best of -runs repetitions each, corpus
// generation excluded):
//
//   - sequential:    Corpus.Analyze, one project at a time
//   - parallel:      Corpus.AnalyzeParallel at GOMAXPROCS workers
//   - pipeline:      the staged pipeline, no cache
//   - pipeline-cold: the staged pipeline with an empty result cache
//   - pipeline-warm: the staged pipeline with a fully warm result cache
//
// Beside wall time, every variant records its allocation trajectory
// (allocs/project and bytes/project, measured over the timed runs), so the
// BENCH artifact captures memory cost, not just speed.
//
// Usage:
//
//	benchpipe                      # seed 1, 3 runs, writes BENCH_pipeline.json
//	benchpipe -seed 7 -runs 5 -out bench.json
//	benchpipe -telemetry           # run with telemetry collection enabled
//	benchpipe -cpuprofile cpu.pb.gz -memprofile mem.pb.gz
//	benchpipe -check               # regression gate against BENCH_pipeline.json
//
// With -telemetry every timed variant carries a live telemetry collector,
// so the JSON additionally records each variant's per-stage breakdown —
// and comparing best_ns against a -telemetry=false run measures the
// telemetry overhead itself (the CI smoke does exactly that).
//
// With -check, no JSON is written: the sequential variant is re-measured
// on the baseline file's seed and the process exits non-zero when
// throughput regressed more than -tolerance (default 10%) below the
// committed baseline, or when allocs/project grew beyond the same
// tolerance. This is the CI bench-regression gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"schemaevo/internal/corpus"
	"schemaevo/internal/pipeline"
	"schemaevo/internal/quantize"
	"schemaevo/internal/synth"
	"schemaevo/internal/telemetry"
)

// result is one timed variant in the emitted JSON.
type result struct {
	Name           string  `json:"name"`
	BestNs         int64   `json:"best_ns"`
	BestMs         float64 `json:"best_ms"`
	ProjectsPerSec float64 `json:"projects_per_sec"`
	// SpeedupVsSequential is wall-clock sequential time over this
	// variant's time (higher is better; 1.0 for sequential itself).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
	// CPUNs and ProjectsPerCPUSec are the best run measured in process CPU
	// time (user+system) instead of wall clock. CPU time is insensitive to
	// co-tenant load on shared machines, so the -check regression gate
	// compares these when the baseline records them. Zero when the platform
	// cannot measure CPU time.
	CPUNs             int64   `json:"cpu_ns,omitempty"`
	ProjectsPerCPUSec float64 `json:"projects_per_cpu_sec,omitempty"`
	// AllocsPerProject and BytesPerProject are the heap allocation count
	// and allocated bytes per analyzed project, averaged over the timed
	// runs (corpus generation excluded).
	AllocsPerProject float64 `json:"allocs_per_project"`
	BytesPerProject  float64 `json:"bytes_per_project"`
	// CacheHitRate is hits/(hits+misses) of the variant's last timed run
	// (0 for the cacheless variants).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// StageBreakdown is the per-stage telemetry of the variant's last
	// timed run; present only with -telemetry.
	StageBreakdown []telemetry.StageReport `json:"stage_breakdown,omitempty"`
}

// report is the full BENCH_pipeline.json document.
type report struct {
	GeneratedBy string         `json:"generated_by"`
	Date        string         `json:"date"`
	Seed        int64          `json:"seed"`
	Projects    int            `json:"projects"`
	Cores       int            `json:"cores"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Runs        int            `json:"runs"`
	Telemetry   bool           `json:"telemetry"`
	Results     []result       `json:"results"`
	WarmStats   pipeline.Stats `json:"warm_cache_stats"`
	Note        string         `json:"note,omitempty"`
	// Previous summarizes the artifact this run replaced (same file, prior
	// recording), so the before/after trajectory of a performance change is
	// readable from the artifact alone.
	Previous *priorSummary `json:"previous,omitempty"`
}

// priorResult is the headline slice of one replaced variant entry.
type priorResult struct {
	Name              string  `json:"name"`
	ProjectsPerSec    float64 `json:"projects_per_sec"`
	ProjectsPerCPUSec float64 `json:"projects_per_cpu_sec,omitempty"`
	AllocsPerProject  float64 `json:"allocs_per_project,omitempty"`
}

// priorSummary preserves the replaced artifact's headline numbers.
type priorSummary struct {
	Date    string        `json:"date"`
	Seed    int64         `json:"seed"`
	Results []priorResult `json:"results"`
}

// summarizePrior reads the artifact about to be replaced and trims it to
// its headline numbers; a missing or unreadable file yields nil.
func summarizePrior(path string) *priorSummary {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var old report
	if err := json.Unmarshal(data, &old); err != nil || len(old.Results) == 0 {
		return nil
	}
	p := &priorSummary{Date: old.Date, Seed: old.Seed}
	for _, r := range old.Results {
		p.Results = append(p.Results, priorResult{
			Name:              r.Name,
			ProjectsPerSec:    r.ProjectsPerSec,
			ProjectsPerCPUSec: r.ProjectsPerCPUSec,
			AllocsPerProject:  r.AllocsPerProject,
		})
	}
	return p
}

func main() {
	var (
		seed       = flag.Int64("seed", 1, "corpus generator seed")
		runs       = flag.Int("runs", 3, "repetitions per variant (best run is reported)")
		out        = flag.String("out", "BENCH_pipeline.json", "output JSON path")
		tele       = flag.Bool("telemetry", false, "attach a telemetry collector to every timed run (records stage breakdowns; compare best_ns with a plain run to measure overhead)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the timed variants to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (taken after the timed variants) to this file")
		check      = flag.Bool("check", false, "regression gate: re-measure the sequential variant and fail if it regressed vs the -out baseline")
		tolerance  = flag.Float64("tolerance", 0.10, "with -check, the fractional regression allowed before failing")
	)
	flag.Parse()
	if *check {
		if err := runCheck(*out, *runs, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "benchpipe:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*seed, *runs, *out, *tele, *cpuprofile, *memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "benchpipe:", err)
		os.Exit(1)
	}
}

// freshCorpus regenerates the corpus; analysis mutates projects, so every
// timed run gets its own copy (generation time is excluded from timings).
func freshCorpus(seed int64) (*corpus.Corpus, error) {
	return synth.PaperCorpus(seed)
}

// variantOutcome carries what one variant's last timed run observed.
type variantOutcome struct {
	stats pipeline.Stats
	tel   *telemetry.Collector
	// allocsPerRun and bytesPerRun are the mean heap allocations and bytes
	// per timed run (mallocs/total-alloc deltas around fn only).
	allocsPerRun float64
	bytesPerRun  float64
}

// measure times fn over runs repetitions of the corpus analysis and
// returns the best wall-clock duration, the best CPU-time duration (zero
// when unmeasurable), and the last run's outcome. With withTel, every run
// carries a fresh telemetry collector (its cost is thus included in the
// timing — the point of the overhead comparison).
func measure(seed int64, runs int, withTel bool, fn func(*corpus.Corpus, *telemetry.Collector) (pipeline.Stats, error)) (time.Duration, time.Duration, variantOutcome, error) {
	best, bestCPU := time.Duration(0), time.Duration(0)
	var last variantOutcome
	var totalAllocs, totalBytes uint64
	var ms0, ms1 runtime.MemStats
	for i := 0; i < runs; i++ {
		c, err := freshCorpus(seed)
		if err != nil {
			return 0, 0, last, err
		}
		if withTel {
			last.tel = telemetry.New()
		}
		runtime.ReadMemStats(&ms0)
		cpu0 := processCPUTime()
		start := time.Now()
		if last.stats, err = fn(c, last.tel); err != nil {
			return 0, 0, last, err
		}
		elapsed := time.Since(start)
		cpu := processCPUTime() - cpu0
		runtime.ReadMemStats(&ms1)
		totalAllocs += ms1.Mallocs - ms0.Mallocs
		totalBytes += ms1.TotalAlloc - ms0.TotalAlloc
		if best == 0 || elapsed < best {
			best = elapsed
		}
		if cpu > 0 && (bestCPU == 0 || cpu < bestCPU) {
			bestCPU = cpu
		}
	}
	last.allocsPerRun = float64(totalAllocs) / float64(runs)
	last.bytesPerRun = float64(totalBytes) / float64(runs)
	return best, bestCPU, last, nil
}

func run(seed int64, runs int, out string, withTel bool, cpuprofile, memprofile string) error {
	probe, err := freshCorpus(seed)
	if err != nil {
		return err
	}
	n := probe.Len()
	rep := report{
		GeneratedBy: "cmd/benchpipe",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Seed:        seed,
		Projects:    n,
		Cores:       runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Runs:        runs,
		Telemetry:   withTel,
	}
	if rep.Cores < 4 {
		rep.Note = fmt.Sprintf(
			"measured on %d core(s): stage parallelism cannot exceed 1x here; the warm-cache variant shows the caching win",
			rep.Cores)
	}

	cacheRoot, err := os.MkdirTemp("", "benchpipe-cache-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheRoot)
	warmDir := filepath.Join(cacheRoot, "warm")

	variants := []struct {
		name string
		fn   func(*corpus.Corpus, *telemetry.Collector) (pipeline.Stats, error)
	}{
		{"sequential", func(c *corpus.Corpus, _ *telemetry.Collector) (pipeline.Stats, error) {
			return pipeline.Stats{}, c.Analyze(quantize.DefaultScheme())
		}},
		{"parallel", func(c *corpus.Corpus, tel *telemetry.Collector) (pipeline.Stats, error) {
			return pipeline.Stats{}, c.AnalyzeParallelObserved(quantize.DefaultScheme(), 0, tel)
		}},
		{"pipeline", func(c *corpus.Corpus, tel *telemetry.Collector) (pipeline.Stats, error) {
			return pipeline.Run(context.Background(), c, pipeline.Options{Telemetry: tel})
		}},
		{"pipeline-cold", func(c *corpus.Corpus, tel *telemetry.Collector) (pipeline.Stats, error) {
			dir, err := os.MkdirTemp(cacheRoot, "cold-")
			if err != nil {
				return pipeline.Stats{}, err
			}
			return pipeline.Run(context.Background(), c, pipeline.Options{CacheDir: dir, Telemetry: tel})
		}},
		{"pipeline-warm", func(c *corpus.Corpus, tel *telemetry.Collector) (pipeline.Stats, error) {
			return pipeline.Run(context.Background(), c, pipeline.Options{CacheDir: warmDir, Telemetry: tel})
		}},
	}

	// Prewarm the warm-cache directory once, outside the timings.
	prewarm, err := freshCorpus(seed)
	if err != nil {
		return err
	}
	if _, err := pipeline.Run(context.Background(), prewarm, pipeline.Options{CacheDir: warmDir}); err != nil {
		return err
	}

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	durations := map[string]time.Duration{}
	cpuDurations := map[string]time.Duration{}
	outcomes := map[string]variantOutcome{}
	for _, v := range variants {
		d, cpu, oc, err := measure(seed, runs, withTel, v.fn)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		durations[v.name] = d
		cpuDurations[v.name] = cpu
		outcomes[v.name] = oc
		fmt.Printf("%-14s %12v  (%.0f projects/sec, %.0f allocs/project)\n",
			v.name, d, float64(n)/d.Seconds(), oc.allocsPerRun/float64(n))
	}

	if memprofile != "" {
		f, err := os.Create(memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			return err
		}
	}

	seq := durations["sequential"]
	for _, v := range variants {
		d := durations[v.name]
		oc := outcomes[v.name]
		r := result{
			Name:                v.name,
			BestNs:              d.Nanoseconds(),
			BestMs:              float64(d.Nanoseconds()) / 1e6,
			ProjectsPerSec:      float64(n) / d.Seconds(),
			SpeedupVsSequential: seq.Seconds() / d.Seconds(),
			AllocsPerProject:    oc.allocsPerRun / float64(n),
			BytesPerProject:     oc.bytesPerRun / float64(n),
		}
		if cpu := cpuDurations[v.name]; cpu > 0 {
			r.CPUNs = cpu.Nanoseconds()
			r.ProjectsPerCPUSec = float64(n) / cpu.Seconds()
		}
		if probes := oc.stats.CacheHits + oc.stats.CacheMisses; probes > 0 {
			r.CacheHitRate = float64(oc.stats.CacheHits) / float64(probes)
		}
		if snap := oc.tel.Snapshot(); snap != nil {
			r.StageBreakdown = snap.Stages
		}
		rep.Results = append(rep.Results, r)
	}

	// Record the warm-cache hit counters as proof the cache short-circuits
	// recomputation.
	final, err := freshCorpus(seed)
	if err != nil {
		return err
	}
	rep.WarmStats, err = pipeline.Run(context.Background(), final, pipeline.Options{CacheDir: warmDir})
	if err != nil {
		return err
	}

	rep.Previous = summarizePrior(out)
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (warm cache: %d/%d hits)\n", out, rep.WarmStats.CacheHits, rep.WarmStats.Projects)
	return nil
}

// runCheck is the CI regression gate: it re-measures the sequential
// variant on the baseline's seed and compares against the committed
// numbers. Throughput may not drop, nor allocations grow, by more than
// the tolerance fraction.
func runCheck(baselinePath string, runs int, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	var baseSeq *result
	for i := range base.Results {
		if base.Results[i].Name == "sequential" {
			baseSeq = &base.Results[i]
		}
	}
	if baseSeq == nil {
		return fmt.Errorf("baseline %s has no sequential entry", baselinePath)
	}

	probe, err := freshCorpus(base.Seed)
	if err != nil {
		return err
	}
	n := probe.Len()
	d, cpu, oc, err := measure(base.Seed, runs, false, func(c *corpus.Corpus, _ *telemetry.Collector) (pipeline.Stats, error) {
		return pipeline.Stats{}, c.Analyze(quantize.DefaultScheme())
	})
	if err != nil {
		return err
	}
	// Prefer CPU-time throughput when both the baseline and this machine
	// measure it: wall clock on shared CI runners swings with co-tenant
	// load, while CPU seconds per project track only the code.
	gotPPS := float64(n) / d.Seconds()
	basePPS, clock := baseSeq.ProjectsPerSec, "wall"
	if baseSeq.ProjectsPerCPUSec > 0 && cpu > 0 {
		gotPPS = float64(n) / cpu.Seconds()
		basePPS, clock = baseSeq.ProjectsPerCPUSec, "cpu"
	}
	gotAllocs := oc.allocsPerRun / float64(n)
	fmt.Printf("sequential (%s clock): baseline %.0f projects/sec, now %.0f (%.2fx); baseline %.0f allocs/project, now %.0f\n",
		clock, basePPS, gotPPS, gotPPS/basePPS, baseSeq.AllocsPerProject, gotAllocs)
	if gotPPS < basePPS*(1-tolerance) {
		return fmt.Errorf("throughput regression: %.0f projects/sec (%s clock) is more than %.0f%% below the baseline %.0f",
			gotPPS, clock, tolerance*100, basePPS)
	}
	// Allocation budgets only gate once the baseline records them (older
	// artifacts carry zero); CPU-noise tolerance applies equally.
	if baseSeq.AllocsPerProject > 0 && gotAllocs > baseSeq.AllocsPerProject*(1+tolerance) {
		return fmt.Errorf("allocation regression: %.0f allocs/project is more than %.0f%% above the baseline %.0f",
			gotAllocs, tolerance*100, baseSeq.AllocsPerProject)
	}
	fmt.Println("bench check ok")
	return nil
}
