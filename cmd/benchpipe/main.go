// Command benchpipe measures the analysis-pipeline throughput on the
// calibrated 151-project corpus and writes the results as JSON, so every
// PR leaves a comparable performance record behind.
//
// Five variants are timed (best of -runs repetitions each, corpus
// generation excluded):
//
//   - sequential:    Corpus.Analyze, one project at a time
//   - parallel:      Corpus.AnalyzeParallel at GOMAXPROCS workers
//   - pipeline:      the staged pipeline, no cache
//   - pipeline-cold: the staged pipeline with an empty result cache
//   - pipeline-warm: the staged pipeline with a fully warm result cache
//
// Usage:
//
//	benchpipe                      # seed 1, 3 runs, writes BENCH_pipeline.json
//	benchpipe -seed 7 -runs 5 -out bench.json
//	benchpipe -telemetry           # run with telemetry collection enabled
//
// With -telemetry every timed variant carries a live telemetry collector,
// so the JSON additionally records each variant's per-stage breakdown —
// and comparing best_ns against a -telemetry=false run measures the
// telemetry overhead itself (the CI smoke does exactly that).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"schemaevo/internal/corpus"
	"schemaevo/internal/pipeline"
	"schemaevo/internal/quantize"
	"schemaevo/internal/synth"
	"schemaevo/internal/telemetry"
)

// result is one timed variant in the emitted JSON.
type result struct {
	Name           string  `json:"name"`
	BestNs         int64   `json:"best_ns"`
	BestMs         float64 `json:"best_ms"`
	ProjectsPerSec float64 `json:"projects_per_sec"`
	// SpeedupVsSequential is wall-clock sequential time over this
	// variant's time (higher is better; 1.0 for sequential itself).
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
	// CacheHitRate is hits/(hits+misses) of the variant's last timed run
	// (0 for the cacheless variants).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// StageBreakdown is the per-stage telemetry of the variant's last
	// timed run; present only with -telemetry.
	StageBreakdown []telemetry.StageReport `json:"stage_breakdown,omitempty"`
}

// report is the full BENCH_pipeline.json document.
type report struct {
	GeneratedBy string         `json:"generated_by"`
	Date        string         `json:"date"`
	Seed        int64          `json:"seed"`
	Projects    int            `json:"projects"`
	Cores       int            `json:"cores"`
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Runs        int            `json:"runs"`
	Telemetry   bool           `json:"telemetry"`
	Results     []result       `json:"results"`
	WarmStats   pipeline.Stats `json:"warm_cache_stats"`
	Note        string         `json:"note,omitempty"`
}

func main() {
	var (
		seed = flag.Int64("seed", 1, "corpus generator seed")
		runs = flag.Int("runs", 3, "repetitions per variant (best run is reported)")
		out  = flag.String("out", "BENCH_pipeline.json", "output JSON path")
		tele = flag.Bool("telemetry", false, "attach a telemetry collector to every timed run (records stage breakdowns; compare best_ns with a plain run to measure overhead)")
	)
	flag.Parse()
	if err := run(*seed, *runs, *out, *tele); err != nil {
		fmt.Fprintln(os.Stderr, "benchpipe:", err)
		os.Exit(1)
	}
}

// freshCorpus regenerates the corpus; analysis mutates projects, so every
// timed run gets its own copy (generation time is excluded from timings).
func freshCorpus(seed int64) (*corpus.Corpus, error) {
	return synth.PaperCorpus(seed)
}

// variantOutcome carries what one variant's last timed run observed.
type variantOutcome struct {
	stats pipeline.Stats
	tel   *telemetry.Collector
}

// measure times fn over runs repetitions of the corpus analysis and
// returns the best wall-clock duration plus the last run's outcome. With
// withTel, every run carries a fresh telemetry collector (its cost is thus
// included in the timing — the point of the overhead comparison).
func measure(seed int64, runs int, withTel bool, fn func(*corpus.Corpus, *telemetry.Collector) (pipeline.Stats, error)) (time.Duration, variantOutcome, error) {
	best := time.Duration(0)
	var last variantOutcome
	for i := 0; i < runs; i++ {
		c, err := freshCorpus(seed)
		if err != nil {
			return 0, last, err
		}
		if withTel {
			last.tel = telemetry.New()
		}
		start := time.Now()
		if last.stats, err = fn(c, last.tel); err != nil {
			return 0, last, err
		}
		elapsed := time.Since(start)
		if best == 0 || elapsed < best {
			best = elapsed
		}
	}
	return best, last, nil
}

func run(seed int64, runs int, out string, withTel bool) error {
	probe, err := freshCorpus(seed)
	if err != nil {
		return err
	}
	n := probe.Len()
	rep := report{
		GeneratedBy: "cmd/benchpipe",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Seed:        seed,
		Projects:    n,
		Cores:       runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Runs:        runs,
		Telemetry:   withTel,
	}
	if rep.Cores < 4 {
		rep.Note = fmt.Sprintf(
			"measured on %d core(s): stage parallelism cannot exceed 1x here; the warm-cache variant shows the caching win",
			rep.Cores)
	}

	cacheRoot, err := os.MkdirTemp("", "benchpipe-cache-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheRoot)
	warmDir := filepath.Join(cacheRoot, "warm")

	variants := []struct {
		name string
		fn   func(*corpus.Corpus, *telemetry.Collector) (pipeline.Stats, error)
	}{
		{"sequential", func(c *corpus.Corpus, _ *telemetry.Collector) (pipeline.Stats, error) {
			return pipeline.Stats{}, c.Analyze(quantize.DefaultScheme())
		}},
		{"parallel", func(c *corpus.Corpus, tel *telemetry.Collector) (pipeline.Stats, error) {
			return pipeline.Stats{}, c.AnalyzeParallelObserved(quantize.DefaultScheme(), 0, tel)
		}},
		{"pipeline", func(c *corpus.Corpus, tel *telemetry.Collector) (pipeline.Stats, error) {
			return pipeline.Run(context.Background(), c, pipeline.Options{Telemetry: tel})
		}},
		{"pipeline-cold", func(c *corpus.Corpus, tel *telemetry.Collector) (pipeline.Stats, error) {
			dir, err := os.MkdirTemp(cacheRoot, "cold-")
			if err != nil {
				return pipeline.Stats{}, err
			}
			return pipeline.Run(context.Background(), c, pipeline.Options{CacheDir: dir, Telemetry: tel})
		}},
		{"pipeline-warm", func(c *corpus.Corpus, tel *telemetry.Collector) (pipeline.Stats, error) {
			return pipeline.Run(context.Background(), c, pipeline.Options{CacheDir: warmDir, Telemetry: tel})
		}},
	}

	// Prewarm the warm-cache directory once, outside the timings.
	prewarm, err := freshCorpus(seed)
	if err != nil {
		return err
	}
	if _, err := pipeline.Run(context.Background(), prewarm, pipeline.Options{CacheDir: warmDir}); err != nil {
		return err
	}

	durations := map[string]time.Duration{}
	outcomes := map[string]variantOutcome{}
	for _, v := range variants {
		d, oc, err := measure(seed, runs, withTel, v.fn)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		durations[v.name] = d
		outcomes[v.name] = oc
		fmt.Printf("%-14s %12v  (%.0f projects/sec)\n", v.name, d, float64(n)/d.Seconds())
	}

	seq := durations["sequential"]
	for _, v := range variants {
		d := durations[v.name]
		oc := outcomes[v.name]
		r := result{
			Name:                v.name,
			BestNs:              d.Nanoseconds(),
			BestMs:              float64(d.Nanoseconds()) / 1e6,
			ProjectsPerSec:      float64(n) / d.Seconds(),
			SpeedupVsSequential: seq.Seconds() / d.Seconds(),
		}
		if probes := oc.stats.CacheHits + oc.stats.CacheMisses; probes > 0 {
			r.CacheHitRate = float64(oc.stats.CacheHits) / float64(probes)
		}
		if snap := oc.tel.Snapshot(); snap != nil {
			r.StageBreakdown = snap.Stages
		}
		rep.Results = append(rep.Results, r)
	}

	// Record the warm-cache hit counters as proof the cache short-circuits
	// recomputation.
	final, err := freshCorpus(seed)
	if err != nil {
		return err
	}
	rep.WarmStats, err = pipeline.Run(context.Background(), final, pipeline.Options{CacheDir: warmDir})
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s (warm cache: %d/%d hits)\n", out, rep.WarmStats.CacheHits, rep.WarmStats.Projects)
	return nil
}
