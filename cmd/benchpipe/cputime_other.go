//go:build !unix

package main

import "time"

// processCPUTime is unavailable on this platform; callers treat zero as
// "no CPU-time measurement" and fall back to wall clock.
func processCPUTime() time.Duration { return 0 }
