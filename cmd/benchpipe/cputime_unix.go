//go:build unix

package main

import (
	"syscall"
	"time"
)

// processCPUTime returns the CPU time (user + system) consumed by the
// process so far. Deltas around a timed region give a throughput measure
// that co-tenant load on a shared machine cannot distort, which is what
// the -check regression gate compares.
func processCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
