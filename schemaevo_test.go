package schemaevo

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 12, 0, 0, 0, time.UTC)
}

func flatlinerRepo() *Repo {
	return &Repo{Name: "flat-demo", Commits: []Commit{
		{ID: "0", Time: day(2019, 1, 3),
			Files:    map[string]string{"schema.sql": "CREATE TABLE users (id INT PRIMARY KEY, name TEXT);"},
			SrcLines: 50},
		{ID: "1", Time: day(2021, 6, 1), Files: map[string]string{"main.go": "x"}, SrcLines: 10},
	}}
}

func TestAnalyzeRepoFlatliner(t *testing.T) {
	a, err := AnalyzeRepo(flatlinerRepo())
	if err != nil {
		t.Fatal(err)
	}
	if a.Pattern != Flatliner || !a.Exact {
		t.Errorf("pattern = %v exact=%v", a.Pattern, a.Exact)
	}
	if a.Family != BeQuickOrBeDead {
		t.Errorf("family = %v", a.Family)
	}
	if a.Measures.TotalActivity != 2 {
		t.Errorf("activity = %d", a.Measures.TotalActivity)
	}
	line := a.SchemaLine()
	if len(line) != a.Measures.PUPMonths || line[0] != 1.0 {
		t.Errorf("schema line: %v", line)
	}
	if !strings.Contains(a.Chart(), "Flatliner") {
		t.Error("chart lacks pattern name")
	}
	if !strings.HasPrefix(a.ChartSVG(), "<svg") {
		t.Error("bad SVG")
	}
}

func TestAnalyzeRepoErrors(t *testing.T) {
	noSchema := &Repo{Name: "empty-sql", Commits: []Commit{
		{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{"schema.sql": "-- nothing here\n"}},
		{ID: "1", Time: day(2021, 6, 1), Files: map[string]string{"x.go": "y"}},
	}}
	if _, err := AnalyzeRepo(noSchema); err == nil {
		t.Error("schema-less project should fail")
	}
	noDDL := &Repo{Name: "noddl", Commits: []Commit{
		{ID: "0", Time: day(2020, 1, 1), Files: map[string]string{"x.go": "y"}},
	}}
	if _, err := AnalyzeRepo(noDDL); err == nil {
		t.Error("DDL-less project should fail")
	}
}

func TestAnalyzeDir(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"0000_2018-02-01.sql": "CREATE TABLE a (x INT);",
		"0001_2019-11-01.sql": "CREATE TABLE a (x INT, y INT); CREATE TABLE b (z TEXT);",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	a, err := AnalyzeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if a.Measures.TotalActivity != 3 {
		t.Errorf("activity = %d", a.Measures.TotalActivity)
	}
	if a.Measures.PUPMonths != 22 {
		t.Errorf("PUP = %d", a.Measures.PUPMonths)
	}
	if _, err := AnalyzeDir(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing dir should fail")
	}
}

func TestGenerateAndAnalyzeCorpus(t *testing.T) {
	c, err := GenerateRandomCorpus(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := AnalyzeCorpus(c); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Projects {
		a, err := AnalyzeRepo(p.Repo)
		if err != nil {
			t.Fatal(err)
		}
		if a.Pattern != p.GroundTruth {
			t.Errorf("%s: public API classified %v, ground truth %v", p.Name, a.Pattern, p.GroundTruth)
		}
	}
}

func TestClassifyHelpers(t *testing.T) {
	a, err := AnalyzeRepo(flatlinerRepo())
	if err != nil {
		t.Fatal(err)
	}
	if got := ClassifyLabels(a.Labels); got != Flatliner {
		t.Errorf("ClassifyLabels = %v", got)
	}
	if got := ClassifyNearest(a.Labels); got != Flatliner {
		t.Errorf("ClassifyNearest = %v", got)
	}
	if FamilyOf(Siesta) != ScaredToFallAsleepAgain {
		t.Error("FamilyOf wrong")
	}
}

func TestLoadRepoRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.json")
	r := flatlinerRepo()
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRepo(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != r.Name {
		t.Errorf("name = %q", back.Name)
	}
}

func TestFacadeCoverage(t *testing.T) {
	for _, p := range AllPatterns {
		if Describe(p) == "" {
			t.Errorf("Describe(%v) empty", p)
		}
	}
	if DescribeFamily(BeQuickOrBeDead) == "" {
		t.Error("DescribeFamily empty")
	}
	c, err := GeneratePaperCorpus(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 151 {
		t.Fatalf("paper corpus = %d", c.Len())
	}
	if err := AnalyzeCorpusParallel(c, 4); err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Projects {
		if !p.Analyzed {
			t.Fatalf("%s not analyzed", p.Name)
		}
	}
}

func TestAnalyzeGitMissingBinaryOrRepo(t *testing.T) {
	// A directory that is not a git repository must fail cleanly.
	if _, err := AnalyzeGit(t.TempDir(), 0); err == nil {
		t.Error("non-repo dir should fail")
	}
}
