package schemaevo_test

import (
	"fmt"
	"time"

	"schemaevo"
)

// ExampleAnalyzeRepo classifies a small in-memory project history.
func ExampleAnalyzeRepo() {
	repo := &schemaevo.Repo{
		Name: "demo",
		Commits: []schemaevo.Commit{
			{ID: "0", Time: time.Date(2019, 1, 5, 0, 0, 0, 0, time.UTC),
				Files:    map[string]string{"schema.sql": "CREATE TABLE t (a INT, b TEXT);"},
				SrcLines: 100},
			{ID: "1", Time: time.Date(2021, 3, 1, 0, 0, 0, 0, time.UTC),
				Files: map[string]string{"main.go": "v2"}, SrcLines: 50},
		},
	}
	a, err := schemaevo.AnalyzeRepo(repo)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(a.Pattern)
	fmt.Println(a.Family)
	fmt.Printf("born month %d, %d attributes\n", a.Measures.BirthMonth, a.Measures.TotalActivity)
	// Output:
	// Flatliner
	// Be Quick or Be Dead
	// born month 0, 2 attributes
}

// ExampleClassifyLabels applies a pattern definition directly.
func ExampleClassifyLabels() {
	repo := &schemaevo.Repo{
		Name: "late",
		Commits: []schemaevo.Commit{
			{ID: "0", Time: time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC),
				Files: map[string]string{"app.go": "x"}, SrcLines: 10},
			{ID: "1", Time: time.Date(2019, 6, 1, 0, 0, 0, 0, time.UTC),
				Files: map[string]string{"schema.sql": "CREATE TABLE late (a INT, b INT, c INT);"}},
			{ID: "2", Time: time.Date(2019, 9, 1, 0, 0, 0, 0, time.UTC),
				Files: map[string]string{"app.go": "y"}, SrcLines: 5},
		},
	}
	a, _ := schemaevo.AnalyzeRepo(repo)
	fmt.Println(schemaevo.ClassifyLabels(a.Labels))
	// Output:
	// Late Riser
}

// ExampleFamilyOf shows the family grouping of §4.
func ExampleFamilyOf() {
	for _, p := range []schemaevo.Pattern{
		schemaevo.Flatliner, schemaevo.QuantumSteps, schemaevo.SmokingFunnel,
	} {
		fmt.Printf("%s: %s\n", p, schemaevo.FamilyOf(p))
	}
	// Output:
	// Flatliner: Be Quick or Be Dead
	// Quantum Steps: Stairway to Heaven
	// Smoking Funnel: Scared to Fall Asleep Again
}
