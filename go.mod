module schemaevo

go 1.22
