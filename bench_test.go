// Benchmarks regenerating every table and figure of the paper from the
// calibrated corpus. Each bench runs the experiment that produces the
// corresponding artifact; BenchmarkEndToEndPipeline times the whole study
// from raw DDL to classified patterns. Run with:
//
//	go test -bench=. -benchmem
package schemaevo

import (
	"context"
	"sync"
	"testing"

	"schemaevo/internal/experiments"
)

var (
	benchOnce sync.Once
	benchCtx  *experiments.Context
	benchErr  error
)

// benchContext builds the analyzed corpus once; experiment benches time
// only the artifact computation, while BenchmarkEndToEndPipeline times
// corpus analysis itself.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() { benchCtx, benchErr = experiments.NewPaperContext(1) })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCtx
}

func BenchmarkTable1Quantization(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Table1(ctx)
		if res.N != 151 {
			b.Fatalf("N = %d", res.N)
		}
	}
}

func BenchmarkTable2Exceptions(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(ctx)
		if res.TotalExceptions() == 0 {
			b.Fatal("no exceptions found")
		}
	}
}

func BenchmarkFigure1Nomenclature(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Figure1(ctx)
		if res.Chart == "" {
			b.Fatal("empty chart")
		}
	}
}

func BenchmarkFigure2Spearman(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Matrix.R) == 0 {
			b.Fatal("empty matrix")
		}
	}
}

func BenchmarkFigure3Exemplars(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Figure3(ctx)
		if len(res.Charts) != 8 {
			b.Fatalf("charts = %d", len(res.Charts))
		}
	}
}

func BenchmarkFigure4Overview(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Figure4(ctx)
		if len(res.Profiles) != 8 {
			b.Fatalf("profiles = %d", len(res.Profiles))
		}
	}
}

func BenchmarkFigure5DecisionTree(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if res.N != 151 {
			b.Fatal("bad sample count")
		}
	}
}

func BenchmarkFigure6DomainCoverage(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Figure6(ctx)
		if len(res.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFigure7BirthPrediction(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if res.Estimator.N() != 151 {
			b.Fatal("bad estimator")
		}
	}
}

func BenchmarkSection34Stats(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Section34(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if res.N != 151 {
			b.Fatal("bad N")
		}
	}
}

func BenchmarkSection52Cohesion(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Section52(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSection61Activity(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Section61(ctx)
		if len(res.Medians) == 0 {
			b.Fatal("no medians")
		}
	}
}

func BenchmarkSection62Rigidity(b *testing.B) {
	ctx := benchContext(b)
	f7, err := experiments.Figure7(ctx)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Section62(f7)
		if len(res.SharpFocused) == 0 {
			b.Fatal("no probabilities")
		}
	}
}

func BenchmarkSection63Mixture(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Section63(ctx)
		if len(res.FamilyShare) == 0 {
			b.Fatal("no shares")
		}
	}
}

func BenchmarkAblationLabelSensitivity(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.LabelSensitivity(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Perturbations) == 0 {
			b.Fatal("no perturbations")
		}
	}
}

func BenchmarkAblationUnsupervised(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Unsupervised(ctx, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndPipeline times the whole study: corpus generation from
// per-pattern profiles, DDL realization, parsing, diffing, heartbeats,
// measures, labels and classification for all 151 projects.
func BenchmarkEndToEndPipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx, err := experiments.NewPaperContext(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if ctx.Corpus.Len() != 151 {
			b.Fatalf("corpus = %d", ctx.Corpus.Len())
		}
	}
}

// BenchmarkAnalyzeSingleProject times the public-API analysis of one
// realistic repository.
func BenchmarkAnalyzeSingleProject(b *testing.B) {
	c, err := GenerateRandomCorpus(1, 42)
	if err != nil {
		b.Fatal(err)
	}
	repo := c.Projects[0].Repo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeRepo(repo); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionCoEvolution(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CoEvolution(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionQueryImpact(b *testing.B) {
	ctx := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Impact(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleRandomCorpus measures pipeline throughput on a larger
// random corpus (projects/second at 500 projects).
func BenchmarkScaleRandomCorpus(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := GenerateRandomCorpus(500, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if err := AnalyzeCorpus(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelAnalysis compares the worker-pool analysis against the
// sequential baseline on the calibrated corpus.
func BenchmarkParallelAnalysis(b *testing.B) {
	c, err := GeneratePaperCorpus(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := AnalyzeCorpusParallel(c, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialAnalysis is the baseline for BenchmarkParallelAnalysis.
func BenchmarkSequentialAnalysis(b *testing.B) {
	c, err := GeneratePaperCorpus(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := AnalyzeCorpus(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineAnalysis times the staged concurrent pipeline without a
// cache on the calibrated corpus.
func BenchmarkPipelineAnalysis(b *testing.B) {
	c, err := GeneratePaperCorpus(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeCorpusPipeline(context.Background(), c, PipelineOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineWarmCache times the pipeline with a fully warm
// content-hash cache: every project short-circuits parse, history assembly
// and metric computation.
func BenchmarkPipelineWarmCache(b *testing.B) {
	c, err := GeneratePaperCorpus(1)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if _, err := AnalyzeCorpusPipeline(context.Background(), c, PipelineOptions{CacheDir: dir}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := AnalyzeCorpusPipeline(context.Background(), c, PipelineOptions{CacheDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if stats.CacheHits != c.Len() {
			b.Fatalf("cache hits = %d, want %d", stats.CacheHits, c.Len())
		}
	}
}
