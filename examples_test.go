package schemaevo

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every runnable example and checks for the
// output each one promises — the examples are documentation, and
// documentation that stops compiling or crashing should fail the build.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples spawn go run; skipped with -short")
	}
	cases := []struct {
		dir  string
		want string
	}{
		{"./examples/quickstart", "Radical Sign"},
		{"./examples/migrations", "final schema"},
		{"./examples/patternmining", "Pattern distribution"},
		{"./examples/predictor", "most likely pattern"},
		{"./examples/impact", "BROKEN"},
		{"./examples/nosql", "final implicit schema"},
	}
	for _, c := range cases {
		c := c
		t.Run(strings.TrimPrefix(c.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", c.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.want) {
				t.Errorf("%s output lacks %q:\n%s", c.dir, c.want, out)
			}
		})
	}
}
