package schemaevo

import (
	"strings"
	"testing"
)

// TestWordpressishCorpus runs the real pipeline over a MySQL-dump-style
// snapshot directory full of dialect noise (backquotes, KEY clauses,
// ENGINE options, enum types, INSERTs, SET statements).
func TestWordpressishCorpus(t *testing.T) {
	a, err := AnalyzeDir("testdata/wordpressish")
	if err != nil {
		t.Fatal(err)
	}
	if a.History.NoteCount() != 0 {
		for _, v := range a.History.Versions {
			for _, n := range v.Notes {
				t.Errorf("parse/apply note: %v", n)
			}
		}
	}
	// Final schema: posts, users, comments, terms, term_relationships.
	final := a.History.FinalSchema()
	if final.TableCount() != 5 {
		t.Errorf("tables = %d (%v)", final.TableCount(), final.TableNames())
	}
	posts, ok := final.Table("wp_posts")
	if !ok {
		t.Fatal("wp_posts missing")
	}
	if len(posts.Columns) != 7 {
		t.Errorf("wp_posts columns = %d (%v)", len(posts.Columns), posts.ColumnNames())
	}
	if len(posts.PrimaryKey) != 1 || posts.PrimaryKey[0] != "ID" {
		t.Errorf("wp_posts pk = %v", posts.PrimaryKey)
	}
	// Version deltas: v1 adds excerpt + comments table (5 attrs) = 6;
	// v2 adds terms (3) + term_relationships (2) + status type change = 6;
	// v3 is a no-op dump refresh.
	ds := a.History.Versions
	if len(ds) != 4 {
		t.Fatalf("versions = %d", len(ds))
	}
	if ds[0].Delta.Total() != 11 {
		t.Errorf("v0 delta = %d", ds[0].Delta.Total())
	}
	if ds[1].Delta.NInjected != 1 || ds[1].Delta.NBornWithTable != 5 {
		t.Errorf("v1 delta: %+v", ds[1].Delta)
	}
	if ds[2].Delta.NTypeChanged != 1 || ds[2].Delta.NBornWithTable != 5 {
		t.Errorf("v2 delta: %+v", ds[2].Delta)
	}
	if !ds[3].Delta.IsZero() {
		t.Errorf("v3 should be a pure dump refresh: %+v changes %v", ds[3].Delta, ds[3].Delta.Changes)
	}
	// Life: born month 0 (2009-03), last change 2009-09 (month 6 of 45):
	// early top band, long frozen tail — a Radical Sign.
	if a.Pattern != RadicalSign {
		t.Errorf("pattern = %v, want Radical Sign (measures %+v)", a.Pattern, a.Measures)
	}
	// Birth month 0, top band month 6 of a 45-month life: a 14% climb —
	// no vault, but still comfortably in the early quarter.
	if a.Measures.HasVault {
		t.Error("14% climb should not count as a vault")
	}
	if a.Measures.TopBandPct > 0.25 {
		t.Errorf("top band at %.2f, want early", a.Measures.TopBandPct)
	}
}

// TestPgappCorpus runs the pipeline over a pg_dump-style directory
// (schema-qualified names, SERIAL, ALTER TABLE ONLY, sequences, casts,
// arrays, partial SQL the logical level ignores).
func TestPgappCorpus(t *testing.T) {
	a, err := AnalyzeDir("testdata/pgapp")
	if err != nil {
		t.Fatal(err)
	}
	if n := a.History.NoteCount(); n != 0 {
		for _, v := range a.History.Versions {
			for _, note := range v.Notes {
				t.Errorf("note: %v", note)
			}
		}
		t.Fatalf("%d notes", n)
	}
	final := a.History.FinalSchema()
	if final.TableCount() != 3 {
		t.Fatalf("tables = %v", final.TableNames())
	}
	projects, _ := final.Table("projects")
	if projects == nil {
		t.Fatal("projects missing")
	}
	if len(projects.ForeignKeys) != 1 || projects.ForeignKeys[0].RefTable != "accounts" {
		t.Errorf("projects fks: %+v", projects.ForeignKeys)
	}
	idCol, _ := projects.Column("id")
	if idCol == nil || !idCol.AutoIncrement || !idCol.InPK {
		t.Errorf("serial pk column: %+v", idCol)
	}
	tags, _ := projects.Column("tags")
	if tags == nil || !strings.Contains(tags.Type, "array") {
		t.Errorf("tags column: %+v", tags)
	}
	// v1: tags injection (1) + audit_events birth (5) = 6.
	if d := a.History.Versions[1].Delta; d.NInjected != 1 || d.NBornWithTable != 5 {
		t.Errorf("v1 delta: %+v (%v)", d, d.Changes)
	}
	if !a.History.Versions[2].Delta.IsZero() {
		t.Errorf("v2 should be zero: %v", a.History.Versions[2].Delta.Changes)
	}
	if a.Pattern != RadicalSign && a.Pattern != Flatliner {
		t.Errorf("pattern = %v", a.Pattern)
	}
}
