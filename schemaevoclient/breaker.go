package schemaevoclient

import (
	"context"
	"sync"
	"time"
)

// breaker is a consecutive-failure circuit breaker. After threshold
// failures in a row it opens for cooldown; an attempt arriving while
// open WAITS the cooldown out (counting against the caller's context)
// and then proceeds as the half-open probe — so the client stops
// hammering a down service without ever giving up on a call that still
// has budget. A probe failure re-opens the breaker; any success closes
// it.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	failures  int
	openUntil time.Time
}

// allow blocks until the breaker admits an attempt or ctx expires.
func (b *breaker) allow(ctx context.Context, sleep func(context.Context, time.Duration) error) error {
	b.mu.Lock()
	wait := time.Until(b.openUntil)
	b.mu.Unlock()
	if wait > 0 {
		if err := sleep(ctx, wait); err != nil {
			return err
		}
		b.mu.Lock()
		// This caller becomes the probe. Clearing the gate (rather than
		// re-checking the clock) keeps the breaker correct under test
		// clocks whose sleep returns without real time passing.
		b.openUntil = time.Time{}
		b.mu.Unlock()
	}
	return ctx.Err()
}

func (b *breaker) success() {
	b.mu.Lock()
	b.failures = 0
	b.openUntil = time.Time{}
	b.mu.Unlock()
}

func (b *breaker) failure() {
	b.mu.Lock()
	b.failures++
	if b.failures >= b.threshold {
		b.openUntil = time.Now().Add(b.cooldown)
		// The next admitted attempt is the probe; count it from a clean
		// slate so one more failure re-opens immediately at threshold 1
		// semantics rather than overflowing.
		b.failures = b.threshold - 1
	}
	b.mu.Unlock()
}
