// In-package tests: the backoff clock is swapped for a recording fake,
// so retry schedules are asserted without real sleeping; servers are
// either protocol fakes (httptest handlers speaking the service's wire
// shapes) or the real internal/server behind a deterministic fault
// wrapper.
package schemaevoclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"schemaevo/internal/server"
	"schemaevo/internal/synth"
	"schemaevo/internal/telemetry"
)

// recordedSleeps swaps the client's backoff clock for an instant fake
// and returns the recorded durations.
func recordedSleeps(c *Client) *[]time.Duration {
	var (
		mu     sync.Mutex
		sleeps []time.Duration
	)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		sleeps = append(sleeps, d)
		mu.Unlock()
		return ctx.Err()
	}
	return &sleeps
}

// workload marshals n distinct synthetic repository histories.
func workload(t *testing.T, n int) [][]byte {
	t.Helper()
	c, err := synth.RandomCorpus(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	docs := make([][]byte, 0, n)
	for _, p := range c.Projects {
		data, err := json.Marshal(p.Repo)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, data)
	}
	return docs
}

// newRealService starts a real analysis server and returns its handler.
func newRealService(t *testing.T) http.Handler {
	t.Helper()
	srv, err := server.New(context.Background(), server.Config{Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// flakyProxy answers a deterministic fraction of requests with an
// injected fault (rotating 429 / 503 / 500, backoff hints on the first
// two) and forwards the rest to the real service.
type flakyProxy struct {
	inner http.Handler
	rate  float64

	mu      sync.Mutex
	rng     *rand.Rand
	total   int
	faulted int
}

func (f *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.total++
	fault := f.rng.Float64() < f.rate
	kind := f.total % 3
	if fault {
		f.faulted++
	}
	f.mu.Unlock()
	if !fault {
		f.inner.ServeHTTP(w, r)
		return
	}
	switch kind {
	case 0:
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"injected backpressure"}`, http.StatusTooManyRequests)
	case 1:
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"injected unavailability"}`, http.StatusServiceUnavailable)
	default:
		http.Error(w, `{"error":"injected transient fault"}`, http.StatusInternalServerError)
	}
}

// TestConvergesUnderInjectedFaults is the client acceptance bar: with
// 30% of ALL requests answered 429/503/500, every submit and every get
// must still converge to the correct result.
func TestConvergesUnderInjectedFaults(t *testing.T) {
	proxy := &flakyProxy{inner: newRealService(t), rate: 0.3, rng: rand.New(rand.NewSource(42))}
	hs := httptest.NewServer(proxy)
	defer hs.Close()

	c := New(Config{
		BaseURL:     hs.URL,
		MaxAttempts: -1, // converge or bust (bounded by the test context)
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
	})
	sleeps := recordedSleeps(c)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	docs := workload(t, 25)
	ids := make([]string, len(docs))
	for i, doc := range docs {
		p, err := c.Submit(ctx, doc)
		if err != nil {
			t.Fatalf("submit %d did not converge: %v", i, err)
		}
		if p.ID == "" || p.Pattern == "" {
			t.Fatalf("submit %d: incomplete result %+v", i, p)
		}
		ids[i] = p.ID
	}
	for i, id := range ids {
		p, err := c.Get(ctx, id)
		if err != nil {
			t.Fatalf("get %d did not converge: %v", i, err)
		}
		if p.ID != id {
			t.Fatalf("get %d: id %q, want %q", i, p.ID, id)
		}
	}

	proxy.mu.Lock()
	total, faulted := proxy.total, proxy.faulted
	proxy.mu.Unlock()
	if faulted == 0 {
		t.Fatal("fault proxy injected nothing; the test proved nothing")
	}
	t.Logf("converged through %d/%d injected faults, %d retry sleeps", faulted, total, len(*sleeps))

	// Every sleep that followed a hinted refusal must honor the hint:
	// with jitter capped at 4ms, any sleep >= 1s can only be the hint,
	// and hinted faults (2 of every 3 injected) must produce them.
	hinted := 0
	for _, d := range *sleeps {
		if d >= time.Second {
			hinted++
		}
	}
	if hinted == 0 {
		t.Fatal("no recorded sleep honored the 1s Retry-After hint")
	}
}

// TestHonorsRetryAfter pins the hint floor precisely: two 429s carrying
// Retry-After: 3 must each produce a sleep of at least 3s even though
// the jitter cap is 2ms.
func TestHonorsRetryAfter(t *testing.T) {
	var calls int
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.Header().Set("Retry-After", "3")
			http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, `{"schema_version":1,"id":"abc","project":"p","pattern":"X"}`)
	}))
	defer hs.Close()

	c := New(Config{BaseURL: hs.URL, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	sleeps := recordedSleeps(c)
	p, err := c.Submit(context.Background(), []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != "abc" {
		t.Fatalf("result id = %q", p.ID)
	}
	if len(*sleeps) != 2 {
		t.Fatalf("recorded %d sleeps, want 2 (one per 429)", len(*sleeps))
	}
	for i, d := range *sleeps {
		if d < 3*time.Second {
			t.Fatalf("sleep %d = %v, shorter than the 3s Retry-After hint", i, d)
		}
	}
}

// TestBreakerOpensAndRecovers drives an outage long enough to trip the
// breaker and asserts (a) the call still converges once the service
// returns, (b) the breaker inserted cooldown-length waits, i.e. the
// client stopped hammering.
func TestBreakerOpensAndRecovers(t *testing.T) {
	var calls int
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 7 {
			http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"schema_version":1,"id":"abc","project":"p","pattern":"X"}`)
	}))
	defer hs.Close()

	c := New(Config{
		BaseURL:          hs.URL,
		MaxAttempts:      -1,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       2 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  5 * time.Second,
	})
	sleeps := recordedSleeps(c)
	if _, err := c.Submit(context.Background(), []byte(`{}`)); err != nil {
		t.Fatalf("did not converge after the outage: %v", err)
	}
	if calls != 8 {
		t.Fatalf("server saw %d requests, want 8 (7 failures + success)", calls)
	}
	cooldowns := 0
	for _, d := range *sleeps {
		if d >= 4*time.Second {
			cooldowns++
		}
	}
	// Failures 3..7 each (re)open the breaker; every subsequent attempt
	// waits a full cooldown: 5 waits for 8 requests.
	if cooldowns != 5 {
		t.Fatalf("recorded %d cooldown-length waits, want 5 (sleeps: %v)", cooldowns, *sleeps)
	}
}

// TestPerAttemptDeadline pins the attempt budget: a hung first response
// costs one attempt (AttemptTimeout), not the caller's whole context.
func TestPerAttemptDeadline(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			select { // hang until the client gives up on the attempt
			case <-time.After(10 * time.Second):
			case <-r.Context().Done():
			}
			return
		}
		fmt.Fprint(w, `{"schema_version":1,"id":"abc","project":"p","pattern":"X"}`)
	}))
	defer hs.Close()

	c := New(Config{BaseURL: hs.URL, AttemptTimeout: 150 * time.Millisecond, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	recordedSleeps(c)
	start := time.Now()
	if _, err := c.Submit(context.Background(), []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("call took %v; the hung attempt was not bounded by AttemptTimeout", took)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Fatalf("server saw %d requests, want 2", calls)
	}
}

// TestTerminalErrorsAreNotRetried pins the taxonomy: 4xx answers (other
// than 429) are the caller's problem, immediately.
func TestTerminalErrorsAreNotRetried(t *testing.T) {
	var calls int
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if r.Method == http.MethodGet {
			http.Error(w, `{"error":"unknown project id nope"}`, http.StatusNotFound)
			return
		}
		http.Error(w, `{"error":"invalid repository JSON"}`, http.StatusBadRequest)
	}))
	defer hs.Close()

	c := New(Config{BaseURL: hs.URL})
	recordedSleeps(c)
	_, err := c.Submit(context.Background(), []byte(`not json`))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("submit error = %v, want a 400 APIError", err)
	}
	if _, err := c.Get(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get error = %v, want ErrNotFound", err)
	}
	if calls != 2 {
		t.Fatalf("server saw %d requests, want 2 (no retries)", calls)
	}
}

// TestReadyAgainstRealService pins Ready's no-retry-on-503 contract
// against the real server in both states.
func TestReadyAgainstRealService(t *testing.T) {
	srv, err := server.New(context.Background(), server.Config{Telemetry: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	c := New(Config{BaseURL: hs.URL})
	recordedSleeps(c)
	ready, err := c.Ready(context.Background())
	if err != nil || !ready {
		t.Fatalf("Ready() = %v, %v; want true", ready, err)
	}
	h, err := c.Health(context.Background())
	if err != nil || h.Status != "healthy" {
		t.Fatalf("Health() = %+v, %v; want healthy", h, err)
	}

	srv.BeginDrain()
	ready, err = c.Ready(context.Background())
	if err != nil || ready {
		t.Fatalf("Ready() while draining = %v, %v; want false without error", ready, err)
	}
}
