package schemaevoclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// BatchLine is the final per-line outcome of one input document.
type BatchLine struct {
	Status  string `json:"status"` // "ok" or "error"
	ID      string `json:"id,omitempty"`
	Project string `json:"project,omitempty"`
	Pattern string `json:"pattern,omitempty"`
	Cache   string `json:"cache,omitempty"`
	Error   string `json:"error,omitempty"`
}

// BatchResult summarizes a converged BatchIngest.
type BatchResult struct {
	// Lines holds one outcome per input document, in input order.
	Lines []BatchLine
	// OK and Errors tally the outcomes.
	OK, Errors int
	// Attempts counts HTTP requests made; Resumed counts the retry
	// attempts that started past line 0 — i.e. reconnects that skipped
	// already-acknowledged lines instead of resending the whole batch.
	Attempts, Resumed int
}

// batchWireLine is one NDJSON response line (per-line or summary).
type batchWireLine struct {
	Line   int    `json:"line"`
	Status string `json:"status"`
	ID     string `json:"id"`
	// Project/Pattern/Cache/Error ride along for per-line records.
	Project string `json:"project"`
	Pattern string `json:"pattern"`
	Cache   string `json:"cache"`
	Error   string `json:"error"`
}

// BatchIngest streams the documents (service repository wire JSON, one
// per element — none may be empty) through POST /v1/projects:batch and
// runs to convergence: a connection dropped mid-stream is re-dialed and
// the batch RESUMES from the first unacknowledged line — the server
// answers per-line responses strictly in input order, so every response
// received acknowledges its line durably analyzed. Re-sent overlap
// (lines analyzed but unacknowledged when the connection died) dedupes
// server-side into store hits. Whole-request refusals (429/503, e.g. a
// draining or read-only service) back off with the server's Retry-After
// hint like every unary call.
func (c *Client) BatchIngest(ctx context.Context, docs [][]byte) (*BatchResult, error) {
	for i, d := range docs {
		if len(bytes.TrimSpace(d)) == 0 {
			return nil, fmt.Errorf("schemaevoclient: batch document %d is empty (blank lines would break resume accounting)", i)
		}
	}
	res := &BatchResult{Lines: make([]BatchLine, len(docs))}
	acked := 0
	var lastErr error
	for attempt := 0; acked < len(docs); attempt++ {
		if c.maxAttempts() >= 0 && attempt >= c.maxAttempts() {
			return res, fmt.Errorf("schemaevoclient: batch: attempts exhausted with %d/%d lines acknowledged: %w",
				acked, len(docs), lastErr)
		}
		if attempt > 0 {
			var hint time.Duration
			var re *retryableError
			if errors.As(lastErr, &re) {
				hint = re.hint
			}
			if err := c.sleep(ctx, c.backoff(attempt-1, hint)); err != nil {
				return res, err
			}
		}
		if err := c.breaker.allow(ctx, c.sleep); err != nil {
			return res, err
		}

		if attempt > 0 && acked > 0 {
			res.Resumed++
		}
		n, err := c.batchAttempt(ctx, docs, acked, res)
		acked += n
		res.Attempts++
		if err == nil {
			c.breaker.success()
			if acked < len(docs) {
				// The server summarized early — it will not answer the
				// missing lines on this connection; re-send the remainder.
				lastErr = &retryableError{err: fmt.Errorf("schemaevoclient: batch stream ended with %d/%d lines acknowledged", acked, len(docs))}
				continue
			}
			break
		}
		var re *retryableError
		if !errors.As(err, &re) {
			return res, err
		}
		c.breaker.failure()
		lastErr = err
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
	}
	for _, l := range res.Lines {
		if l.Status == "ok" {
			res.OK++
		} else {
			res.Errors++
		}
	}
	return res, nil
}

// batchAttempt streams docs[from:] and records per-line outcomes as
// they arrive. It returns how many lines this attempt acknowledged
// (counted even when the connection then died) and whether the stream
// completed.
func (c *Client) batchAttempt(ctx context.Context, docs [][]byte, from int, res *BatchResult) (acked int, err error) {
	var body bytes.Buffer
	for _, d := range docs[from:] {
		body.Write(bytes.TrimSpace(d))
		body.WriteByte('\n')
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/projects:batch", &body)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		return 0, &retryableError{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		apiErr := &APIError{Status: resp.StatusCode, Message: errorMessage(data)}
		if retryableStatus(resp.StatusCode) {
			return 0, &retryableError{err: apiErr, hint: retryAfterHint(resp)}
		}
		return 0, apiErr
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		var wire batchWireLine
		if err := json.Unmarshal(sc.Bytes(), &wire); err != nil {
			return acked, &retryableError{err: fmt.Errorf("schemaevoclient: malformed batch response line: %w", err)}
		}
		if wire.Status == "summary" {
			return acked, nil
		}
		idx := from + acked
		if wire.Line != acked+1 {
			// The server numbers THIS request's lines 1..k in input order;
			// a mismatch means our accounting would resume at the wrong
			// line — fail the batch rather than risk skipping a document.
			return acked, fmt.Errorf("schemaevoclient: batch response line %d arrived out of order (want %d)", wire.Line, acked+1)
		}
		if idx >= len(docs) {
			return acked, fmt.Errorf("schemaevoclient: server acknowledged more lines than were sent")
		}
		res.Lines[idx] = BatchLine{
			Status: wire.Status, ID: wire.ID, Project: wire.Project,
			Pattern: wire.Pattern, Cache: wire.Cache, Error: wire.Error,
		}
		acked++
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return acked, ctx.Err()
		}
		return acked, &retryableError{err: err}
	}
	// EOF without a summary line: the connection died between lines.
	return acked, &retryableError{err: errors.New("schemaevoclient: batch stream truncated before the summary line")}
}
