package schemaevoclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// batchFake speaks the service's NDJSON batch protocol and can be told
// to kill the connection after acknowledging a set number of lines on a
// given request — the deterministic "connection dropped mid-stream".
type batchFake struct {
	mu sync.Mutex
	// dieAfter[reqIndex] = kill the connection after that many response
	// lines (0-based request counter; absent = complete normally).
	dieAfter map[int]int
	requests int
	// lineCounts records how many input lines each request carried.
	lineCounts []int
}

func (f *batchFake) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	reqIdx := f.requests
	f.requests++
	die, doDie := f.dieAfter[reqIdx]
	f.mu.Unlock()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher := w.(http.Flusher)
	sc := bufio.NewScanner(r.Body)
	lineNo, okCount := 0, 0
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		lineNo++
		var doc struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			fmt.Fprintf(w, `{"line":%d,"status":"error","error":"bad json"}`+"\n", lineNo)
			flusher.Flush()
			continue
		}
		okCount++
		fmt.Fprintf(w, `{"line":%d,"status":"ok","id":"id-%s","project":%q,"cache":"miss"}`+"\n", lineNo, doc.Name, doc.Name)
		flusher.Flush()
		if doDie && lineNo >= die {
			f.mu.Lock()
			f.lineCounts = append(f.lineCounts, lineNo)
			f.mu.Unlock()
			panic(http.ErrAbortHandler) // kill the connection mid-stream
		}
	}
	f.mu.Lock()
	f.lineCounts = append(f.lineCounts, lineNo)
	f.mu.Unlock()
	fmt.Fprintf(w, `{"status":"summary","lines":%d,"ok":%d,"errors":%d}`+"\n", lineNo, okCount, lineNo-okCount)
	flusher.Flush()
}

func batchDocs(n int) [][]byte {
	docs := make([][]byte, n)
	for i := range docs {
		docs[i] = []byte(fmt.Sprintf(`{"name":"proj-%02d"}`, i))
	}
	return docs
}

// TestBatchResumesAfterConnectionDrop is the resume contract: the
// connection dies after 3 of 8 lines were acknowledged; the client must
// reconnect and send ONLY the 5 unacknowledged documents, and the final
// per-line outcomes must line up with the inputs with no offset skew.
func TestBatchResumesAfterConnectionDrop(t *testing.T) {
	fake := &batchFake{dieAfter: map[int]int{0: 3}}
	hs := httptest.NewServer(fake)
	defer hs.Close()

	c := New(Config{BaseURL: hs.URL, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	recordedSleeps(c)
	docs := batchDocs(8)
	res, err := c.BatchIngest(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 8 || res.Errors != 0 {
		t.Fatalf("result = %d ok / %d errors, want 8/0", res.OK, res.Errors)
	}
	if res.Attempts != 2 || res.Resumed != 1 {
		t.Fatalf("attempts = %d, resumed = %d; want 2 attempts with 1 resume", res.Attempts, res.Resumed)
	}
	for i, line := range res.Lines {
		wantID := fmt.Sprintf("id-proj-%02d", i)
		if line.Status != "ok" || line.ID != wantID {
			t.Fatalf("line %d = %+v, want ok with id %q (offset skew?)", i, line, wantID)
		}
	}
	fake.mu.Lock()
	defer fake.mu.Unlock()
	if len(fake.lineCounts) != 2 || fake.lineCounts[0] != 3 || fake.lineCounts[1] != 5 {
		t.Fatalf("per-request line counts = %v, want [3 5] (resume resent the acknowledged prefix?)", fake.lineCounts)
	}
}

// TestBatchRetriesWholeRequestRefusal pins the other failure shape: a
// 503 before any line is acknowledged retries the whole batch with the
// server's hint honored.
func TestBatchRetriesWholeRequestRefusal(t *testing.T) {
	var refused bool
	fake := &batchFake{}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !refused {
			refused = true
			w.Header().Set("Retry-After", "2")
			http.Error(w, `{"error":"store is in read-only mode"}`, http.StatusServiceUnavailable)
			return
		}
		fake.ServeHTTP(w, r)
	}))
	defer hs.Close()

	c := New(Config{BaseURL: hs.URL, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	sleeps := recordedSleeps(c)
	res, err := c.BatchIngest(context.Background(), batchDocs(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 4 || res.Attempts != 2 || res.Resumed != 0 {
		t.Fatalf("result = %+v, want 4 ok over 2 attempts with no resume", res)
	}
	if len(*sleeps) != 1 || (*sleeps)[0] < 2*time.Second {
		t.Fatalf("sleeps = %v, want one sleep honoring the 2s hint", *sleeps)
	}
}

// TestBatchAgainstRealService round-trips the real batch endpoint: the
// fake-driven tests pin the resume mechanics, this one pins wire
// compatibility (field names, summary shape, cache states).
func TestBatchAgainstRealService(t *testing.T) {
	hs := httptest.NewServer(newRealService(t))
	defer hs.Close()
	c := New(Config{BaseURL: hs.URL})
	recordedSleeps(c)

	docs := workload(t, 5)
	res, err := c.BatchIngest(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 5 || res.Errors != 0 || res.Attempts != 1 {
		t.Fatalf("first ingest = %+v, want 5 ok in one attempt", res)
	}
	for i, line := range res.Lines {
		if line.ID == "" || line.Pattern == "" || line.Cache == "" {
			t.Fatalf("line %d incomplete: %+v", i, line)
		}
	}

	// Resubmitting the same corpus must be all store hits.
	res, err = c.BatchIngest(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range res.Lines {
		if line.Cache != "hit" {
			t.Fatalf("line %d cache = %q on resubmission, want hit", i, line.Cache)
		}
	}
}

// TestBatchRejectsEmptyDocuments pins the guard that keeps resume
// accounting sound (the server counts blank lines it then skips).
func TestBatchRejectsEmptyDocuments(t *testing.T) {
	c := New(Config{BaseURL: "http://127.0.0.1:0"})
	if _, err := c.BatchIngest(context.Background(), [][]byte{[]byte(`{"name":"a"}`), []byte("  ")}); err == nil {
		t.Fatal("empty document accepted; resume accounting would skew")
	}
}
