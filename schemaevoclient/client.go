// Package schemaevoclient is the Go client for the schema-evolution
// analysis service (cmd/schemaevod). It wraps the HTTP API behind a
// retrying, fault-tolerant transport so callers see converged results,
// not the service's weather:
//
//   - every retryable failure — connection errors, 429 backpressure,
//     503 drain/read-only refusals, transient 5xx — is retried with
//     capped exponential backoff and full jitter, always honoring the
//     server's Retry-After hint (the sleep is never shorter than the
//     hint, never longer than the jitter cap if that is larger);
//   - each attempt runs under its own deadline budget, so one hung
//     connection costs one attempt, not the whole call;
//   - a circuit breaker opens after consecutive failures and waits out
//     its cooldown before probing again — during an outage the client
//     stops hammering the service but still converges once it returns;
//   - batch ingest (BatchIngest) streams NDJSON and, when the
//     connection drops mid-stream, resumes from the last acknowledged
//     line instead of resending the whole batch (resent lines are
//     store hits server-side, so overlap is idempotent).
//
// Submissions and batch lines are raw JSON documents in the service's
// repository wire format; the client does not re-model them.
package schemaevoclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config parameterizes a Client. The zero value needs only BaseURL.
type Config struct {
	// BaseURL locates the service, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport; nil selects a dedicated
	// http.Client with keep-alives.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per call. 0 selects 8; negative means
	// unlimited (the call is then bounded only by its context).
	MaxAttempts int
	// BaseBackoff is the first retry's jitter ceiling. <= 0 selects 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential jitter ceiling. <= 0 selects 5s.
	MaxBackoff time.Duration
	// AttemptTimeout is the per-attempt deadline budget for unary calls
	// (batch streams are exempt — their lifetime is server-paced). <= 0
	// selects 30s.
	AttemptTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit breaker. <= 0 selects 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker blocks attempts before
	// letting a probe through. <= 0 selects 2s.
	BreakerCooldown time.Duration
	// Seed drives the jitter; 0 selects 1 (deterministic by default —
	// vary it per process if cross-client synchronization matters).
	Seed int64
}

// Client is a retrying HTTP client for the analysis service. Construct
// with New; safe for concurrent use.
type Client struct {
	cfg     Config
	base    string
	hc      *http.Client
	breaker *breaker

	rngMu sync.Mutex
	rng   *rand.Rand

	// sleep is the backoff clock, injectable by tests.
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a Client for the service at cfg.BaseURL.
func New(cfg Config) *Client {
	c := &Client{cfg: cfg, base: strings.TrimRight(cfg.BaseURL, "/")}
	if c.hc = cfg.HTTPClient; c.hc == nil {
		c.hc = &http.Client{}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c.rng = rand.New(rand.NewSource(seed))
	threshold := cfg.BreakerThreshold
	if threshold <= 0 {
		threshold = 5
	}
	cooldown := cfg.BreakerCooldown
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	c.breaker = &breaker{threshold: threshold, cooldown: cooldown}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if d <= 0 {
			return ctx.Err()
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	}
	return c
}

// APIError is a terminal (non-retryable) response from the service.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("schemaevoclient: server answered %d: %s", e.Status, e.Message)
}

// ErrNotFound wraps 404 responses, so callers can branch with errors.Is.
var ErrNotFound = errors.New("schemaevoclient: not found")

// Project is a decoded analysis result; Raw preserves the full response
// body for callers that need fields beyond the headline ones.
type Project struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	Name          string `json:"project"`
	Pattern       string `json:"pattern"`
	Family        string `json:"family"`
	Exact         bool   `json:"exact"`

	Raw json.RawMessage `json:"-"`
}

// Health is the decoded GET /healthz body.
type Health struct {
	Status         string   `json:"status"`
	Projects       int      `json:"projects"`
	Stored         int      `json:"stored"`
	ReadOnly       bool     `json:"read_only"`
	PendingRepairs int      `json:"pending_repairs"`
	QueueDepth     int      `json:"queue_depth"`
	Reasons        []string `json:"reasons"`
}

// maxAttempts resolves the per-call attempt bound; <0 means unlimited.
func (c *Client) maxAttempts() int {
	if c.cfg.MaxAttempts == 0 {
		return 8
	}
	return c.cfg.MaxAttempts
}

func (c *Client) attemptTimeout() time.Duration {
	if c.cfg.AttemptTimeout > 0 {
		return c.cfg.AttemptTimeout
	}
	return 30 * time.Second
}

// backoff computes the sleep before retry number attempt (0-based):
// full jitter over an exponentially growing ceiling, floored by the
// server's Retry-After hint when one was given.
func (c *Client) backoff(attempt int, hint time.Duration) time.Duration {
	base := c.cfg.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	cap := c.cfg.MaxBackoff
	if cap <= 0 {
		cap = 5 * time.Second
	}
	ceiling := base << uint(attempt)
	if ceiling <= 0 || ceiling > cap { // <= 0 guards shift overflow
		ceiling = cap
	}
	c.rngMu.Lock()
	d := time.Duration(c.rng.Int63n(int64(ceiling) + 1))
	c.rngMu.Unlock()
	if d < hint {
		d = hint
	}
	return d
}

// retryAfterHint parses a response's Retry-After header (seconds form).
func retryAfterHint(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// retryableStatus reports whether a status code is worth another
// attempt: backpressure, drain/read-only refusals, and transient server
// faults. Client errors (4xx other than 429) are terminal.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// errorMessage extracts the service's structured error body (falling
// back to the raw bytes).
func errorMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

// do runs one unary request to convergence: breaker gate, per-attempt
// deadline, retry with hinted jittered backoff. It returns the terminal
// response body and status.
func (c *Client) do(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	status, _, data, err := c.doCond(ctx, method, path, body, "")
	return status, data, err
}

// doCond is do with conditional-request support: etag, when non-empty,
// is sent as If-None-Match, and the response headers are returned so
// callers can capture validators. A 304 answer is a success.
func (c *Client) doCond(ctx context.Context, method, path string, body []byte, etag string) (int, http.Header, []byte, error) {
	var lastErr error
	for attempt := 0; c.maxAttempts() < 0 || attempt < c.maxAttempts(); attempt++ {
		if attempt > 0 {
			// lastErr carries the hint captured from the previous attempt.
			var hint time.Duration
			var re *retryableError
			if errors.As(lastErr, &re) {
				hint = re.hint
			}
			if err := c.sleep(ctx, c.backoff(attempt-1, hint)); err != nil {
				return 0, nil, nil, err
			}
		}
		if err := c.breaker.allow(ctx, c.sleep); err != nil {
			return 0, nil, nil, err
		}
		status, header, data, err := c.attempt(ctx, method, path, body, etag)
		if err == nil {
			c.breaker.success()
			return status, header, data, nil
		}
		var re *retryableError
		if !errors.As(err, &re) {
			// Terminal: a 4xx or the caller's context. The service
			// answered, so the breaker stays untouched — only retryable
			// (transport / transient 5xx) failures feed it.
			return status, header, data, err
		}
		c.breaker.failure()
		lastErr = err
		if ctx.Err() != nil {
			return 0, nil, nil, ctx.Err()
		}
	}
	return 0, nil, nil, fmt.Errorf("schemaevoclient: %s %s: attempts exhausted: %w", method, path, lastErr)
}

// retryableError marks an attempt failure the retry loop should absorb,
// carrying the server's backoff hint when one was given.
type retryableError struct {
	err  error
	hint time.Duration
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// attempt issues one try of a unary call under its own deadline budget.
// etag, when non-empty, rides as If-None-Match; the matching 304 answer
// counts as success (it only ever arrives when the caller asked for it).
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, etag string) (int, http.Header, []byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.attemptTimeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return 0, nil, nil, ctx.Err()
		}
		// Transport failure or per-attempt timeout: retryable.
		return 0, nil, nil, &retryableError{err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return 0, nil, nil, ctx.Err()
		}
		return 0, nil, nil, &retryableError{err: err}
	}
	if (resp.StatusCode >= 200 && resp.StatusCode < 300) || resp.StatusCode == http.StatusNotModified {
		return resp.StatusCode, resp.Header, data, nil
	}
	apiErr := &APIError{Status: resp.StatusCode, Message: errorMessage(data)}
	if retryableStatus(resp.StatusCode) {
		return resp.StatusCode, resp.Header, data, &retryableError{err: apiErr, hint: retryAfterHint(resp)}
	}
	if resp.StatusCode == http.StatusNotFound {
		return resp.StatusCode, resp.Header, data, fmt.Errorf("%w: %s", ErrNotFound, apiErr.Message)
	}
	return resp.StatusCode, resp.Header, data, apiErr
}

// decodeProject parses a project wire body.
func decodeProject(data []byte) (*Project, error) {
	var p Project
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("schemaevoclient: decoding project body: %w", err)
	}
	p.Raw = append(json.RawMessage(nil), data...)
	return &p, nil
}

// Submit sends one repository history (service wire JSON) for analysis
// and returns the converged result.
func (c *Client) Submit(ctx context.Context, repoJSON []byte) (*Project, error) {
	_, data, err := c.do(ctx, http.MethodPost, "/v1/projects", repoJSON)
	if err != nil {
		return nil, err
	}
	return decodeProject(data)
}

// Get fetches a project's analysis by ID. Unknown IDs return an error
// wrapping ErrNotFound.
func (c *Client) Get(ctx context.Context, id string) (*Project, error) {
	_, data, err := c.do(ctx, http.MethodGet, "/v1/projects/"+id, nil)
	if err != nil {
		return nil, err
	}
	return decodeProject(data)
}

// GetConditional fetches a project's analysis by ID, revalidating a
// cached copy: etag, when non-empty, is the validator from a previous
// fetch (the response's ETag header). When the representation is
// unchanged the server answers 304 with no body and GetConditional
// returns (nil, etag, true, nil); otherwise it returns the decoded
// project, its current validator, and notModified=false. Unknown IDs
// return an error wrapping ErrNotFound.
func (c *Client) GetConditional(ctx context.Context, id, etag string) (p *Project, currentETag string, notModified bool, err error) {
	status, header, data, err := c.doCond(ctx, http.MethodGet, "/v1/projects/"+id, nil, etag)
	if err != nil {
		return nil, "", false, err
	}
	if status == http.StatusNotModified {
		return nil, header.Get("ETag"), true, nil
	}
	p, err = decodeProject(data)
	if err != nil {
		return nil, "", false, err
	}
	return p, header.Get("ETag"), false, nil
}

// Delete removes a submitted project. Unknown IDs return an error
// wrapping ErrNotFound.
func (c *Client) Delete(ctx context.Context, id string) error {
	_, _, err := c.do(ctx, http.MethodDelete, "/v1/projects/"+id, nil)
	return err
}

// Health fetches /healthz. It reaches the service even while degraded
// or read-only (the endpoint stays 200; the body carries the state).
func (c *Client) Health(ctx context.Context) (*Health, error) {
	_, data, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil {
		return nil, err
	}
	var h Health
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("schemaevoclient: decoding healthz body: %w", err)
	}
	return &h, nil
}

// Ready reports the /readyz routing signal: true when the service
// accepts writes. Unlike the other calls it does NOT retry a 503 —
// "not ready" is the answer, not a failure. Transport errors still
// retry.
func (c *Client) Ready(ctx context.Context) (bool, error) {
	var lastErr error
	for attempt := 0; c.maxAttempts() < 0 || attempt < c.maxAttempts(); attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt-1, 0)); err != nil {
				return false, err
			}
		}
		status, _, _, err := c.attempt(ctx, http.MethodGet, "/readyz", nil, "")
		if err == nil {
			return true, nil
		}
		if status == http.StatusServiceUnavailable {
			return false, nil
		}
		var re *retryableError
		if !errors.As(err, &re) {
			return false, err
		}
		lastErr = err
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
	}
	return false, fmt.Errorf("schemaevoclient: readyz: attempts exhausted: %w", lastErr)
}

// Metrics fetches the raw /metrics telemetry report JSON.
func (c *Client) Metrics(ctx context.Context) (json.RawMessage, error) {
	_, data, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return nil, err
	}
	return data, nil
}
